package sim

import (
	"reflect"
	"testing"

	"branchconf/internal/artifact"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

// streamTestMechs mixes every streaming code path: two resumable
// geometries (one duplicated, exercising the shared-lane dedup), a
// two-level geometry, a predictor-coupled mechanism (replay path, needs
// the state lane), and a non-factorable one (replay path, no lane).
func streamTestMechs() []func() core.Mechanism {
	return []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func() core.Mechanism {
			return core.NewTwoLevel(core.TwoLevelConfig{L1Bits: 6, L1CIRBits: 5, L2CIRBits: 4, HistoryBits: 7})
		},
		func() core.Mechanism { return core.NewAnnotatedStrength() },
		func() core.Mechanism { return core.NewStaticProfile() },
	}
}

// TestStreamingMatchesMonolithic is the tentpole equivalence check: the
// segmented streaming engine must be byte-identical to the monolithic
// two-stage engine at every segment size, including size 1 (a checkpointed
// resume at every single branch) and sizes at/past the budget (one segment,
// exercising the trivial segmentation).
func TestStreamingMatchesMonolithic(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	const n = 5000
	cfg := SuiteConfig{Branches: n, Specs: workload.Suite()[:2]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	want, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, streamTestMechs())
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []uint64{1, 997, n, n + 1} {
		scfg := cfg
		scfg.SegmentBranches = size
		got, err := RunSuiteAnnotated(scfg, "gshare-64K", newPred, streamTestMechs())
		if err != nil {
			t.Fatalf("segment size %d: %v", size, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("segment size %d: streaming suite diverges from monolithic", size)
		}
	}
}

// TestStreamingNonAnnotatingPredictor: a predictor with no state hook
// streams miss-bits-only segments for uncoupled mechanisms, byte-identical
// to the monolithic run.
func TestStreamingNonAnnotatingPredictor(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	cfg := SuiteConfig{Branches: 4000, Specs: workload.Suite()[:2]}
	newPred := func() predictor.Predictor {
		p, err := predictor.Build("gselect-64K")
		if err != nil {
			panic(err)
		}
		return p
	}
	mechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
	}
	want, err := RunSuiteAnnotated(cfg, "gselect-64K", newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.SegmentBranches = 777
	got, err := RunSuiteAnnotated(scfg, "gselect-64K", newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("gselect streaming suite diverges from monolithic")
	}
}

// streamStore installs a fresh artifact store for one test.
func streamStore(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(t.TempDir(), 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	artifact.SetDefault(s)
	t.Cleanup(func() { artifact.SetDefault(nil) })
	return s
}

// TestStreamingWarmStart: with an artifact store, a second streaming run
// serves every segment payload from disk; after a mid-run segment is
// dropped, the walk revives predictor and factor state from the boundary
// checkpoints and rebuilds only that segment, still byte-identically.
func TestStreamingWarmStart(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	s := streamStore(t)
	const (
		n       = 5000
		segSize = 997
		predKey = "gshare-64K"
	)
	spec := workload.Suite()[0]
	cfg := SuiteConfig{Branches: n, Specs: []workload.Spec{spec}, SegmentBranches: segSize}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	mechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func() core.Mechanism { return core.NewAnnotatedStrength() },
	}

	ResetStreamStats()
	want, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	cold := StreamReport()
	if cold.Hits != 0 || cold.Misses == 0 {
		t.Fatalf("cold run: hits %d, misses %d", cold.Hits, cold.Misses)
	}
	if cold.ResidentBytes == 0 {
		t.Fatal("cold run recorded no in-flight bytes")
	}

	ResetStreamStats()
	warm, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm streaming run diverges from cold")
	}
	rep := StreamReport()
	if rep.Misses != 0 || rep.Hits == 0 {
		t.Fatalf("warm run rebuilt segments: hits %d, misses %d", rep.Hits, rep.Misses)
	}

	// Drop segment 2's annotated stream and one geometry's bucket stream:
	// the walk must resume both the predictor and that geometry's factor
	// state from the checkpoints at the segment's entry boundary.
	geom := core.PaperOneLevel(core.IndexPCxorBHR).GeometryKey()
	s.Drop(artifact.KindAnnotatedStream, annSegKey(spec, n, predKey, segSize, 2))
	s.Drop(artifact.KindBucketStream, bucketSegKey(spec, n, predKey, geom, segSize, 2))
	ResetStreamStats()
	streamCkptRestores.Store(0)
	healed, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(healed, want) {
		t.Fatal("checkpoint-resumed streaming run diverges")
	}
	rep = StreamReport()
	if rep.Misses == 0 || rep.Hits == 0 {
		t.Fatalf("healing run: hits %d, misses %d", rep.Hits, rep.Misses)
	}
	if restores := streamCkptRestores.Load(); restores < 2 {
		t.Fatalf("expected predictor and geometry checkpoint restores, got %d", restores)
	}
	if rep.VerifyFails != 0 {
		t.Fatalf("healing run fell back to forceLive: %d retries", rep.VerifyFails)
	}
}

// TestStreamingForceLiveRetry: when a cold mid-run segment has no usable
// boundary checkpoint (warm prefix, then a hole), the unit retries with
// every disk read skipped, rebuilds the whole trace live, republishes the
// missing payloads, and still matches byte-for-byte.
func TestStreamingForceLiveRetry(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	s := streamStore(t)
	const (
		n       = 5000
		segSize = 997
		predKey = "gshare-64K"
	)
	spec := workload.Suite()[0]
	cfg := SuiteConfig{Branches: n, Specs: []workload.Spec{spec}, SegmentBranches: segSize}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	mechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
	}
	want, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	// Remove segment 2's annotated stream and the predictor checkpoint at
	// its entry boundary: segments 0-1 serve warm, segment 2 must be
	// annotated live, and the predictor has nothing to resume from.
	s.Drop(artifact.KindAnnotatedStream, annSegKey(spec, n, predKey, segSize, 2))
	s.Drop(artifact.KindCheckpoint, predCkptKey(spec, n, predKey, segSize, 2*segSize))
	ResetStreamStats()
	got, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("forceLive streaming run diverges")
	}
	if rep := StreamReport(); rep.VerifyFails == 0 {
		t.Fatalf("expected a forceLive retry, stats %+v", rep)
	}
	// The retry republished everything: one more run is fully warm again.
	ResetStreamStats()
	again, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("post-heal streaming run diverges")
	}
	if rep := StreamReport(); rep.Misses != 0 {
		t.Fatalf("store not healed by forceLive retry: %+v", rep)
	}
}
