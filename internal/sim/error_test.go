package sim

import (
	"errors"
	"io"
	"strings"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// failingSource yields n good records then a hard error.
type failingSource struct {
	n   int
	err error
}

func (f *failingSource) Next() (trace.Record, error) {
	if f.n == 0 {
		return trace.Record{}, f.err
	}
	f.n--
	return trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}, nil
}

func TestRunPropagatesSourceError(t *testing.T) {
	boom := errors.New("disk on fire")
	res, err := Run(&failingSource{n: 5, err: boom}, predictor.NewBimodal(8), core.PaperResetting())
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap source error", err)
	}
	// Partial results up to the failure are preserved.
	if res.Branches != 5 {
		t.Fatalf("partial branches %d, want 5", res.Branches)
	}
	if !strings.Contains(err.Error(), "sim:") {
		t.Fatalf("error %q lacks package context", err)
	}
}

func TestRunEstimatorPropagatesSourceError(t *testing.T) {
	boom := errors.New("bad sector")
	_, err := RunEstimator(&failingSource{n: 2, err: boom}, predictor.NewBimodal(8), core.PaperEstimator(8))
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap source error", err)
	}
}

func TestRunMultiPropagatesSourceError(t *testing.T) {
	boom := errors.New("cosmic ray")
	_, err := RunMulti(&failingSource{n: 1, err: boom}, predictor.NewBimodal(8), core.PaperMultiEstimator())
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap source error", err)
	}
}

func TestRunWithFlushPropagatesSourceError(t *testing.T) {
	boom := errors.New("truncated trace")
	_, err := RunWithFlush(&failingSource{n: 3, err: boom}, predictor.NewBimodal(8),
		core.PaperOneLevel(core.IndexPCxorBHR), 100, FlushPolicy{})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap source error", err)
	}
}

func TestRunEmptySource(t *testing.T) {
	res, err := Run(trace.Trace{}.Source(), predictor.NewBimodal(8), core.PaperResetting())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 0 || res.MissRate() != 0 {
		t.Fatalf("empty run %+v", res)
	}
}

// eofOnly always returns io.EOF: Run treats it as a clean end, not error.
func TestRunCleanEOF(t *testing.T) {
	src := trace.FuncSource(func() (trace.Record, error) { return trace.Record{}, io.EOF })
	if _, err := Run(src, predictor.AlwaysTaken{}, core.NewStaticProfile()); err != nil {
		t.Fatalf("EOF treated as error: %v", err)
	}
}
