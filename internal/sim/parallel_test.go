package sim

import (
	"reflect"
	"sync"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

// TestSetParallelismResizeMidSuite hammers SetParallelism while suites are
// in flight, in both engines. Under -race this checks the eager channel
// rebuild: units acquired before a resize must release into the channel
// they drew from while new acquisitions see the new width, with no data
// race on the pool and no lost slots (a lost slot would deadlock a later
// acquire and hang the test).
func TestSetParallelismResizeMidSuite(t *testing.T) {
	defer SetParallelism(0)
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()

	cfg := SuiteConfig{Branches: 3000, Specs: workload.Suite()[:4]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
	}

	SetParallelism(2)
	want, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		sizes := []int{1, 3, 2, 8, 1, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(sizes[i%len(sizes)])
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				var got []SuiteResult
				var err error
				if (g+iter)%2 == 0 {
					got, err = RunSuiteBatch(cfg, newPred, newMechs)
				} else {
					got, err = RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
				}
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, iter, err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d iter %d: resize changed results", g, iter)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	resizer.Wait()

	// The pool must still be functional at whatever width won the race.
	after, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Fatal("post-resize suite diverges")
	}
}
