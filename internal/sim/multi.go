package sim

import (
	"fmt"
	"io"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// LevelTally summarises one confidence level of a multi-level run.
type LevelTally struct {
	Branches uint64
	Misses   uint64
}

// Rate returns the level's misprediction rate.
func (l LevelTally) Rate() float64 {
	if l.Branches == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Branches)
}

// MultiResult is the per-level outcome distribution of a multi-level
// estimator run. Levels[0] is the lowest confidence class.
type MultiResult struct {
	Benchmark string
	Levels    []LevelTally
}

// Branches returns the total classified predictions.
func (m MultiResult) Branches() uint64 {
	var n uint64
	for _, l := range m.Levels {
		n += l.Branches
	}
	return n
}

// Misses returns the total mispredictions.
func (m MultiResult) Misses() uint64 {
	var n uint64
	for _, l := range m.Levels {
		n += l.Misses
	}
	return n
}

// RunMulti replays src through pred and the multi-level estimator.
func RunMulti(src trace.Source, pred predictor.Predictor, est *core.MultiEstimator) (MultiResult, error) {
	res := MultiResult{Levels: make([]LevelTally, est.Levels())}
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		level := est.Level(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)
		res.Levels[level].Branches++
		if incorrect {
			res.Levels[level].Misses++
		}
	}
}

// FlushPolicy mutates a confidence mechanism at a context-switch boundary
// (§5.4). Policies that fully reinitialise can call Reset; cheaper
// hardware may only age entries (core.OneLevel.MarkOldest) or do nothing.
type FlushPolicy struct {
	Name  string
	Apply func(core.Mechanism)
}

// RunWithFlush replays src through pred and mech, applying flush at every
// interval branches — modelling periodic context switches that disturb
// only the confidence tables (the §5.4 study holds the predictor fixed to
// isolate CT initialisation effects). interval must be positive.
func RunWithFlush(src trace.Source, pred predictor.Predictor, mech core.Mechanism, interval uint64, flush FlushPolicy) (Result, error) {
	if interval == 0 {
		return Result{}, fmt.Errorf("sim: flush interval must be positive")
	}
	var res Result
	acc := newBucketAccum()
	sinceFlush := uint64(0)
	for {
		r, err := src.Next()
		if err == io.EOF {
			res.Buckets = acc.stats()
			return res, nil
		}
		if err != nil {
			res.Buckets = acc.stats()
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		if sinceFlush == interval {
			if flush.Apply != nil {
				flush.Apply(mech)
			}
			sinceFlush = 0
		}
		incorrect := pred.Predict(r) != r.Taken
		acc.add(mech.Bucket(r), incorrect)
		pred.Update(r)
		mech.Update(r, incorrect)
		res.Branches++
		sinceFlush++
		if incorrect {
			res.Misses++
		}
	}
}

// RunWithFlushBatch is the batched counterpart of RunWithFlush: one trace
// walk through one predictor, applying flushes[i] to mechs[i] at every
// interval. Flush policies touch only their mechanism — the predictor is
// deliberately undisturbed by context switches in the §5.4 study — so each
// mechanism observes exactly the stream its solo RunWithFlush would, and
// the results are byte-identical to len(mechs) separate runs.
func RunWithFlushBatch(src trace.Source, pred predictor.Predictor, mechs []core.Mechanism, interval uint64, flushes []FlushPolicy) ([]Result, error) {
	if interval == 0 {
		return nil, fmt.Errorf("sim: flush interval must be positive")
	}
	if len(mechs) != len(flushes) {
		return nil, fmt.Errorf("sim: %d mechanisms but %d flush policies", len(mechs), len(flushes))
	}
	results := make([]Result, len(mechs))
	accums := make([]*bucketAccum, len(mechs))
	for i := range accums {
		accums[i] = newBucketAccum()
	}
	finish := func() {
		for i := range results {
			results[i].Buckets = accums[i].stats()
		}
	}
	sinceFlush := uint64(0)
	for {
		r, err := src.Next()
		if err == io.EOF {
			finish()
			return results, nil
		}
		if err != nil {
			finish()
			return results, fmt.Errorf("sim: reading trace: %w", err)
		}
		if sinceFlush == interval {
			for i, f := range flushes {
				if f.Apply != nil {
					f.Apply(mechs[i])
				}
			}
			sinceFlush = 0
		}
		incorrect := pred.Predict(r) != r.Taken
		for i, m := range mechs {
			accums[i].add(m.Bucket(r), incorrect)
		}
		pred.Update(r)
		for i, m := range mechs {
			m.Update(r, incorrect)
			results[i].Branches++
			if incorrect {
				results[i].Misses++
			}
		}
		sinceFlush++
	}
}
