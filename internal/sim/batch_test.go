package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func batchTrace(t *testing.T, n uint64) trace.Trace {
	t.Helper()
	spec, err := workload.ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRunBatchMatchesRun is the core single-pass equivalence check: one
// RunBatch over N mechanisms must reproduce N independent Run passes
// exactly, including the predictor-coupled counter-strength mechanism
// (which reads the live predictor's counters in Bucket, so it is sensitive
// to the Bucket-before-Update ordering).
func TestRunBatchMatchesRun(t *testing.T) {
	tr := batchTrace(t, 30000)
	// Each constructor receives the predictor instance driving its pass.
	newMechs := []func(pred *predictor.Gshare) core.Mechanism{
		func(*predictor.Gshare) core.Mechanism { return core.PaperResetting() },
		func(*predictor.Gshare) core.Mechanism {
			return core.NewCounterTable(core.CounterConfig{Kind: core.Saturating, Scheme: core.IndexPCxorBHR})
		},
		func(*predictor.Gshare) core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func(pred *predictor.Gshare) core.Mechanism { return core.NewCounterStrength(pred) },
	}

	pred := predictor.Gshare64K().(*predictor.Gshare)
	mechs := make([]core.Mechanism, len(newMechs))
	for i, nm := range newMechs {
		mechs[i] = nm(pred)
	}
	got, err := RunBatch(tr.Source(), pred, mechs)
	if err != nil {
		t.Fatal(err)
	}
	for i, nm := range newMechs {
		solo := predictor.Gshare64K().(*predictor.Gshare)
		want, err := Run(tr.Source(), solo, nm(solo))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("mechanism %d (%s): batched result diverges from Run\n got %+v\nwant %+v",
				i, mechs[i].Name(), got[i], want)
		}
	}
}

func TestRunSuiteBatchMatchesRunSuite(t *testing.T) {
	cfg := SuiteConfig{Branches: 8000}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
	}
	batched, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	for i, nm := range newMechs {
		want, err := RunSuite(cfg, newPred, nm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], want) {
			t.Errorf("mechanism %d: suite batch diverges from RunSuite", i)
		}
	}
}

func TestRunSuiteBatchCachedSource(t *testing.T) {
	// A Source hook feeding materialized replays must reproduce the
	// streaming walk exactly.
	cfg := SuiteConfig{Branches: 8000}
	cached := cfg
	cached.Source = func(spec workload.Spec, branches uint64) (trace.Source, error) {
		buf, err := workload.Materialize(spec, branches)
		if err != nil {
			return nil, err
		}
		return buf.Source(), nil
	}
	defer workload.ResetMaterializeCache()
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMech := func() core.Mechanism { return core.PaperResetting() }
	want, err := RunSuite(cfg, newPred, newMech)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuite(cached, newPred, newMech)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached-source suite diverges from streaming suite")
	}
}

// TestRunSuiteErrorsJoined checks that a multi-benchmark failure reports
// every failing benchmark, not just the first.
func TestRunSuiteErrorsJoined(t *testing.T) {
	boom := errors.New("boom")
	cfg := SuiteConfig{
		Branches: 100,
		Specs:    workload.Suite()[:3],
		Source: func(spec workload.Spec, branches uint64) (trace.Source, error) {
			if spec.Name == "groff" || spec.Name == "jpeg_play" {
				return nil, boom
			}
			return spec.FiniteSource(branches)
		},
	}
	_, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.PaperResetting() })
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range []string{"groff", "jpeg_play"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error missing benchmark %s: %v", name, err)
		}
	}
}

func TestDeriveEstimatorMatchesRunEstimator(t *testing.T) {
	tr := batchTrace(t, 30000)
	for _, threshold := range []uint64{1, 2, 4, 8} {
		res, err := Run(tr.Source(), predictor.Gshare64K(), core.PaperResetting())
		if err != nil {
			t.Fatal(err)
		}
		derived := DeriveEstimator(res, core.CounterReducer{Threshold: threshold})
		est := core.NewEstimator(core.PaperResetting(), core.CounterReducer{Threshold: threshold})
		want, err := RunEstimator(tr.Source(), predictor.Gshare64K(), est)
		if err != nil {
			t.Fatal(err)
		}
		if derived != want {
			t.Errorf("threshold %d: derived %+v, online %+v", threshold, derived, want)
		}
	}
}

func TestDeriveMultiMatchesRunMulti(t *testing.T) {
	tr := batchTrace(t, 30000)
	thresholds := []uint64{1, 4, 12}
	res, err := Run(tr.Source(), predictor.Gshare64K(), core.PaperResetting())
	if err != nil {
		t.Fatal(err)
	}
	derived := DeriveMulti(res, thresholds)
	multi := core.NewMultiEstimator(core.PaperResetting(), thresholds)
	want, err := RunMulti(tr.Source(), predictor.Gshare64K(), multi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(derived, want) {
		t.Errorf("derived %+v, online %+v", derived, want)
	}
}

func TestSetParallelism(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	cfg := SuiteConfig{Branches: 4000, Specs: workload.Suite()[:4]}
	a, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.PaperResetting() })
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(8)
	b, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.PaperResetting() })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallelism changed suite results")
	}
}
