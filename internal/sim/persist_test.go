package sim

import (
	"bytes"
	"reflect"
	"testing"

	"branchconf/internal/analysis"
	"branchconf/internal/bitvec"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
)

// buildAnnotated returns a real annotated stream for the codec tests:
// stateful (gshare carries a counter-state lane) or stateless.
func buildAnnotated(t *testing.T, withState bool) *AnnotatedStream {
	t.Helper()
	flat := annotateBuffer(t, 20000).Flatten()
	if withState {
		return Annotate(flat, predictor.Gshare64K())
	}
	return Annotate(flat, predictor.NewBimodal(10)) // no StateAnnotator: no lane
}

func TestAnnotatedStreamCodecRoundTrip(t *testing.T) {
	for _, withState := range []bool{true, false} {
		ann := buildAnnotated(t, withState)
		if ann.HasState() != withState {
			t.Fatalf("HasState = %v, want %v", ann.HasState(), withState)
		}
		payload := marshalAnnotatedStream(ann)
		got, err := unmarshalAnnotatedStream(payload)
		if err != nil {
			t.Fatalf("state=%v: %v", withState, err)
		}
		if got.n != ann.n || got.misses != ann.misses || got.HasState() != withState {
			t.Fatalf("state=%v: decoded shape (n=%d misses=%d state=%v), want (%d, %d, %v)",
				withState, got.n, got.misses, got.HasState(), ann.n, ann.misses, withState)
		}
		for i := 0; i < ann.n; i++ {
			if got.miss.Bit(i) != ann.miss.Bit(i) {
				t.Fatalf("state=%v: mispredict bit %d differs", withState, i)
			}
		}
		if withState {
			for i := 0; i < ann.n; i++ {
				if got.state.At(i) != ann.state.At(i) {
					t.Fatalf("state lane entry %d differs", i)
				}
			}
		}
		// Canonical encoding: marshal(unmarshal(p)) == p.
		if !bytes.Equal(marshalAnnotatedStream(got), payload) {
			t.Fatalf("state=%v: re-marshalled payload differs", withState)
		}
	}
}

func TestAnnotatedStreamCodecRejectsDamage(t *testing.T) {
	ann := buildAnnotated(t, true)
	payload := marshalAnnotatedStream(ann)
	for n := 0; n < len(payload); n += 7 { // step keeps the walk fast
		if _, err := unmarshalAnnotatedStream(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := unmarshalAnnotatedStream(append(bytes.Clone(payload), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A lying miss count must be caught by the popcount cross-check.
	mut := bytes.Clone(payload)
	mut[8]++
	if _, err := unmarshalAnnotatedStream(mut); err == nil {
		t.Fatal("inflated miss count accepted")
	}
	// Flipping a mispredict bit changes the popcount and must be caught too.
	mut = bytes.Clone(payload)
	mut[17+8] ^= 1 // first word of the mispredict lane
	if _, err := unmarshalAnnotatedStream(mut); err == nil {
		t.Fatal("flipped mispredict bit accepted")
	}
}

// TestBucketStreamCodecRoundTrip builds a real geometry-keyed bucket
// stream through the stage-3 kernel, round-trips it, and checks the lane,
// histogram, and replay-visible behaviour all survive.
func TestBucketStreamCodecRoundTrip(t *testing.T) {
	flat := annotateBuffer(t, 20000).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	var fm core.Factorable = core.PaperOneLevel(core.IndexPCxorBHR)
	lane := bitvec.NewDense(fm.BucketWidth(), flat.Len())
	fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, nil)
	bs := &BucketStream{lane: lane, n: ann.n, misses: ann.misses, stats: tallyLane(lane, ann.MissWords(), ann.n)}

	payload := marshalBucketStream(bs)
	got, err := unmarshalBucketStream(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != bs.n || got.misses != bs.misses {
		t.Fatalf("decoded shape (n=%d misses=%d), want (%d, %d)", got.n, got.misses, bs.n, bs.misses)
	}
	for i := 0; i < bs.n; i++ {
		if got.Bucket(i) != bs.Bucket(i) {
			t.Fatalf("bucket lane entry %d differs", i)
		}
	}
	if !reflect.DeepEqual(got.Stats(), bs.Stats()) {
		t.Fatal("decoded histogram differs")
	}
	if !bytes.Equal(marshalBucketStream(got), payload) {
		t.Fatal("re-marshalled payload differs")
	}
}

func TestBucketStreamCodecRejectsDamage(t *testing.T) {
	// Tiny fixture: 4 branches in buckets 0,1,1,3 with misses on the two
	// bucket-1 branches.
	lane := bitvec.NewDense(2, 4)
	for _, b := range []uint64{0, 1, 1, 3} {
		lane.Append(b)
	}
	bs := &BucketStream{lane: lane, n: 4, misses: 2, stats: analysis.BucketStats{
		0: {Events: 1},
		1: {Events: 2, Misses: 2},
		3: {Events: 1},
	}}
	payload := marshalBucketStream(bs)
	if _, err := unmarshalBucketStream(payload); err != nil {
		t.Fatalf("fixture does not round-trip: %v", err)
	}
	for n := 0; n < len(payload); n++ {
		if _, err := unmarshalBucketStream(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := unmarshalBucketStream(append(bytes.Clone(payload), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Histogram totals must tie out against the stream header.
	mut := bytes.Clone(payload)
	mut[0]++ // n = 5, but buckets still sum to 4 events
	if _, err := unmarshalBucketStream(mut); err == nil {
		t.Fatal("histogram/stream event disagreement accepted")
	}
	mut = bytes.Clone(payload)
	mut[8]++ // misses = 3, buckets still sum to 2
	if _, err := unmarshalBucketStream(mut); err == nil {
		t.Fatal("histogram/stream miss disagreement accepted")
	}
}
