package sim

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

func TestRunMultiPartitions(t *testing.T) {
	spec, err := workload.ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(100000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMulti(src, predictor.Gshare64K(), core.PaperMultiEstimator())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches() != 100000 {
		t.Fatalf("branches %d", res.Branches())
	}
	if len(res.Levels) != 4 {
		t.Fatalf("%d levels", len(res.Levels))
	}
	// Misprediction rate must decrease with confidence level.
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Rate() >= res.Levels[i-1].Rate() {
			t.Fatalf("level %d rate %.4f not below level %d rate %.4f",
				i, res.Levels[i].Rate(), i-1, res.Levels[i-1].Rate())
		}
	}
	// The top level holds the bulk of branches (zero-bucket analogue).
	top := res.Levels[len(res.Levels)-1]
	if float64(top.Branches)/float64(res.Branches()) < 0.4 {
		t.Fatalf("top level holds only %d/%d branches", top.Branches, res.Branches())
	}
}

func TestRunWithFlushIntervalValidation(t *testing.T) {
	spec, _ := workload.ByName("groff")
	src, _ := spec.FiniteSource(100)
	_, err := RunWithFlush(src, predictor.Gshare4K(), core.PaperOneLevel(core.IndexPCxorBHR), 0, FlushPolicy{})
	if err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestRunWithFlushNilPolicyMatchesPlainRun(t *testing.T) {
	spec, _ := workload.ByName("groff")
	mk := func() *core.OneLevel { return core.PaperOneLevel(core.IndexPCxorBHR) }
	src1, _ := spec.FiniteSource(50000)
	plain, err := Run(src1, predictor.Gshare64K(), mk())
	if err != nil {
		t.Fatal(err)
	}
	src2, _ := spec.FiniteSource(50000)
	flushed, err := RunWithFlush(src2, predictor.Gshare64K(), mk(), 1000, FlushPolicy{Name: "noop"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Misses != flushed.Misses || len(plain.Buckets) != len(flushed.Buckets) {
		t.Fatalf("no-op flush diverged: %d vs %d misses", plain.Misses, flushed.Misses)
	}
}

func TestRunWithFlushZerosHurts(t *testing.T) {
	// Flushing the CT to zeros at every switch must degrade confidence
	// quality versus keeping it (the §5.4/Fig. 11 effect at switch time).
	spec, _ := workload.ByName("groff")
	curve := func(apply func(core.Mechanism), init core.InitPolicy) float64 {
		src, _ := spec.FiniteSource(150000)
		mech := core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, Init: init})
		res, err := RunWithFlush(src, predictor.Gshare64K(), mech, 10000, FlushPolicy{Apply: apply})
		if err != nil {
			t.Fatal(err)
		}
		// Inline mini-analysis: fraction of misses in buckets covering the
		// worst 20% of events.
		return coverageAt20(t, res)
	}
	keep := curve(nil, core.InitOnes)
	zeros := curve(func(m core.Mechanism) { m.Reset() }, core.InitZeros)
	if zeros >= keep {
		t.Fatalf("flush-to-zeros (%.1f) not worse than keep (%.1f)", zeros, keep)
	}
}

func coverageAt20(t *testing.T, res Result) float64 {
	t.Helper()
	type kv struct {
		rate   float64
		events uint64
		misses uint64
	}
	var items []kv
	var totalE, totalM uint64
	for _, tally := range res.Buckets {
		items = append(items, kv{tally.Rate(), tally.Events, tally.Misses})
		totalE += tally.Events
		totalM += tally.Misses
	}
	// Selection sort by rate desc is fine at these sizes.
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].rate > items[i].rate {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	var cumE, cumM uint64
	for _, it := range items {
		if float64(cumE+it.events) > 0.2*float64(totalE) {
			break
		}
		cumE += it.events
		cumM += it.misses
	}
	return 100 * float64(cumM) / float64(totalM)
}
