package exp

import (
	"sync"
	"sync/atomic"
)

// SessionPool shares Sessions across requests in a resident process: every
// request naming the same Config gets the same *Session, so their suite
// passes coalesce onto the session's single-flight pass cache — two
// concurrent clients asking for the same (experiment, benchmark, budget,
// config) trigger exactly one simulation. Distinct Configs get distinct
// sessions (their results legitimately differ), bounded in number by an
// LRU over configurations so a hostile or merely varied request mix cannot
// pin unbounded state.
//
// The pool is safe for concurrent use.
type SessionPool struct {
	mu       sync.Mutex
	sessions map[Config]*pooledSession
	clock    uint64
	max      int    // max resident sessions (<=0: DefaultMaxSessions)
	passBond uint64 // per-session pass-cache byte bound (0 = unbounded)

	evictions atomic.Uint64
	// retiredHits/retiredMisses accumulate pass-cache counters of evicted
	// sessions so pool-wide stats never move backwards.
	retiredHits, retiredMisses atomic.Uint64
}

type pooledSession struct {
	s       *Session
	lastUse uint64
}

// DefaultMaxSessions bounds resident sessions when a pool is built with
// max <= 0. Distinct configurations are rare in practice (budget sweeps,
// A/B engine switches), so a handful covers real mixes.
const DefaultMaxSessions = 8

// NewSessionPool returns a pool holding at most max sessions (<=0 uses
// DefaultMaxSessions), each with the given pass-cache byte bound
// (0 = unbounded).
func NewSessionPool(max int, passBound uint64) *SessionPool {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &SessionPool{
		sessions: make(map[Config]*pooledSession),
		max:      max,
		passBond: passBound,
	}
}

// Get returns the shared session for cfg, creating it on first use and
// evicting the least-recently-used session beyond the pool bound.
func (p *SessionPool) Get(cfg Config) *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock++
	if ps := p.sessions[cfg]; ps != nil {
		ps.lastUse = p.clock
		return ps.s
	}
	s := NewSession(cfg)
	s.SetPassBound(p.passBond)
	p.sessions[cfg] = &pooledSession{s: s, lastUse: p.clock}
	for len(p.sessions) > p.max {
		p.evictOldestLocked()
	}
	return s
}

// evictOldestLocked retires the least-recently-used session, folding its
// pass-cache counters into the pool's retired totals.
func (p *SessionPool) evictOldestLocked() {
	var (
		victim Config
		oldest uint64
		found  bool
	)
	for cfg, ps := range p.sessions {
		if !found || ps.lastUse < oldest {
			found, oldest, victim = true, ps.lastUse, cfg
		}
	}
	if !found {
		return
	}
	h, m := p.sessions[victim].s.Stats()
	p.retiredHits.Add(h)
	p.retiredMisses.Add(m)
	delete(p.sessions, victim)
	p.evictions.Add(1)
}

// Trim retires every resident session, releasing their pass caches. The
// memory-pressure hook: a resident process under heap pressure calls this
// (repopulation is warm — the annotated/bucket/curve/model/disk tiers
// below the pass cache survive, so re-deriving a pass costs a replay, not
// a simulation).
func (p *SessionPool) Trim() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.sessions) > 0 {
		p.evictOldestLocked()
	}
}

// Len reports the resident session count.
func (p *SessionPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Stats aggregates pass-cache hits and misses across resident and retired
// sessions, plus the pool's session evictions.
func (p *SessionPool) Stats() (hits, misses, evictions uint64) {
	p.mu.Lock()
	for _, ps := range p.sessions {
		h, m := ps.s.Stats()
		hits += h
		misses += m
	}
	p.mu.Unlock()
	hits += p.retiredHits.Load()
	misses += p.retiredMisses.Load()
	return hits, misses, p.evictions.Load()
}
