package exp

import (
	"branchconf/internal/artifact"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// CacheTier is one engine cache's name and uniform counter quad, in the
// order the pipeline consults them.
type CacheTier struct {
	Name  string
	Stats artifact.TierStats
}

// CacheTiers snapshots every tier of the cache hierarchy the engine runs
// on — materialize memo, annotated-stream LRU, bucket-stream LRU,
// model-stats LRU, curve LRU, the persistent disk store, the streaming
// engine's segment tier, and the disk store's remote tier — under one uniform
// hit/miss/eviction/resident quad (plus the disk tier's health columns:
// verify failures, op errors, and the degraded flag a tripped breaker
// raises), so the -cache-stats table renders all tiers identically. The
// per-session pass cache (Session.Stats) sits above all of these and is
// reported by the caller that owns the session.
func CacheTiers() []CacheTier {
	return []CacheTier{
		{Name: "trace-memo", Stats: workload.MaterializeReport()},
		{Name: "annotated-stream", Stats: sim.AnnotatedCacheReport()},
		{Name: "bucket-stream", Stats: sim.BucketCacheReport()},
		{Name: "model-stats", Stats: ModelCacheReport()},
		{Name: "curve", Stats: CurveCacheReport()},
		{Name: "artifact-disk", Stats: artifact.Report()},
		// The streaming engine's segment counters ride the same quad: warm
		// vs live segment payloads as hits/misses, forceLive unit retries as
		// verify failures, and the in-flight segment-bytes high-water mark
		// as resident bytes. Appended last so positional consumers of the
		// original six tiers stay valid.
		{Name: "stream-segment", Stats: sim.StreamReport()},
		// The remote artifact tier layered under the disk store. Its quad is
		// remapped where disk columns have no network meaning: resident_bytes
		// counts record bytes moved over the wire (both directions) and
		// evictions counts write-behind Puts shed by a full queue or a
		// degraded tier. Appended last, as above.
		{Name: "remote-artifact", Stats: artifact.RemoteReport()},
	}
}
