package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// writeRealTrace records a small ChampSim trace from a suite benchmark.
func writeRealTrace(t *testing.T, n uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "smoke.champsim")
	src, err := workload.Suite()[0].FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewChampSimWriter(f)
	if _, err := w.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRealTraceNeedsAFile(t *testing.T) {
	e, err := ByID("realtrace")
	if err != nil {
		t.Fatal(err)
	}
	if !e.OptIn {
		t.Fatal("realtrace must be opt-in")
	}
	if _, err := e.RunOnce(Config{}); err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("no trace file: err = %v, want a hint to pass -trace", err)
	}
}

// TestRealTraceEnginesAgree pins the tentpole contract: the experiment
// renders native TAGE/perceptron confidence next to the CIR tables, and
// its bytes are identical across the annotated, batched, streaming, and
// artifact-free engine configurations.
func TestRealTraceEnginesAgree(t *testing.T) {
	path := writeRealTrace(t, 4000)
	e, err := ByID("realtrace")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.RunOnce(Config{TraceFile: path})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gshare-64k", "tage", "perceptron", "native@20%", "resetting@20%"} {
		if !strings.Contains(strings.ToLower(ref.Text), strings.ToLower(want)) {
			t.Fatalf("output lacks %q:\n%s", want, ref.Text)
		}
	}
	for _, scalar := range []string{"tage/native@20%", "perceptron/native@20%", "miss%/tage", "gshare-64k/resetting@20%"} {
		found := false
		for k := range ref.Scalars {
			if strings.EqualFold(k, scalar) {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing scalar %q in %v", scalar, ref.Scalars)
		}
	}
	variants := map[string]Config{
		"batched":           {TraceFile: path, NoAnnotate: true},
		"no-tally":          {TraceFile: path, NoTally: true},
		"streaming":         {TraceFile: path, SegmentBranches: 512},
		"no-curve-artifact": {TraceFile: path, NoCurveArtifact: true},
	}
	for name, cfg := range variants {
		out, err := e.RunOnce(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Text != ref.Text {
			t.Fatalf("%s engine diverges:\n--- annotated ---\n%s--- %s ---\n%s", name, ref.Text, name, out.Text)
		}
	}

	// A copy of the same bytes at a different path is the same trace: the
	// identity is the content digest, not the location.
	copyPath := filepath.Join(t.TempDir(), "smoke.champsim")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := e.RunOnce(Config{TraceFile: copyPath})
	if err != nil {
		t.Fatal(err)
	}
	if out.Text != ref.Text {
		t.Fatal("same trace bytes at a different path changed the report")
	}
}

// TestRealTraceBudgetClamps: a budget above the recording's branch count
// clamps to the recording instead of failing or cold-starting caches.
func TestRealTraceBudgetClamps(t *testing.T) {
	path := writeRealTrace(t, 2000)
	e, err := ByID("realtrace")
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.RunOnce(Config{TraceFile: path})
	if err != nil {
		t.Fatal(err)
	}
	over, err := e.RunOnce(Config{TraceFile: path, Branches: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if over.Text != full.Text {
		t.Fatal("over-budget run diverges from the full-trace run")
	}
}
