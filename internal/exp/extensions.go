package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/analysis"
	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Extensions beyond the paper's figures: the multi-level generalisation §1
// mentions but does not pursue, the context-switch initialisation
// conjecture of §5.4, and pipeline gating — the direct follow-on
// application of these estimators (Manne, Klauser & Grunwald, ISCA '98).
func init() {
	registerExtensions()
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func registerExtensions() {
	register(Experiment{
		ID:    "gating",
		Title: "Pipeline gating: wrong-path work vs stall cost across gate thresholds",
		Paper: "follow-on work (ISCA '98) built on this paper's estimators; gating should cut wasted work at small stall cost",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "gating", Title: "pipeline gating", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("gate-threshold  wasted%work  stalled%demand  mispredict%\n")
			// All thresholds share one predictor+estimator walk per benchmark
			// (the gate never feeds back into either), so the whole study is
			// one pass over the suite instead of len(thresholds) passes.
			thresholds := []int{0, 4, 2, 1}
			cfgs := make([]apps.GateConfig, len(thresholds))
			for i, thr := range thresholds {
				cfgs[i] = apps.GateConfig{ResolveDistance: 4, Threshold: thr}
			}
			wasted := make([]float64, len(thresholds))
			stalled := make([]float64, len(thresholds))
			miss := make([]float64, len(thresholds))
			n := 0
			for _, spec := range workload.Suite() {
				// The whole batch is one model-tier entry: its counts are a
				// pure function of one predictor+estimator walk, and the
				// threshold list is part of the key.
				params := fmt.Sprintf("pred=gshare4k|est=paper8|resolve=4|thrs=%v", thresholds)
				counts, err := s.modelCounts(modelKey("gating", spec.Name, s.Branches(), params), 5*len(cfgs), func() ([]uint64, error) {
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					results, err := apps.RunGatingBatch(src, predictor.Gshare4K(), core.PaperEstimator(8), cfgs)
					if err != nil {
						return nil, err
					}
					out := make([]uint64, 0, 5*len(results))
					for _, r := range results {
						out = append(out, r.Branches, r.Misses, r.Useful, r.Wasted, r.Stalled)
					}
					return out, nil
				})
				if err != nil {
					return nil, err
				}
				results := make([]apps.GateResult, len(cfgs))
				for i := range results {
					w := counts[5*i:]
					results[i] = apps.GateResult{Branches: w[0], Misses: w[1], Useful: w[2], Wasted: w[3], Stalled: w[4]}
				}
				for i, res := range results {
					wasted[i] += res.WastedFrac()
					stalled[i] += res.StallFrac()
					miss[i] += float64(res.Misses) / float64(res.Branches)
				}
				n++
			}
			for i, thr := range thresholds {
				w, st, m := wasted[i]/float64(n), stalled[i]/float64(n), miss[i]/float64(n)
				label := fmt.Sprintf("%d", thr)
				if thr == 0 {
					label = "off"
				}
				fmt.Fprintf(&b, "%14s  %11.2f  %14.2f  %11.2f\n", label, 100*w, 100*st, 100*m)
				o.Scalars[fmt.Sprintf("thr%s-wasted%%", label)] = 100 * w
				o.Scalars[fmt.Sprintf("thr%s-stalled%%", label)] = 100 * st
			}
			o.Text = b.String()
			return o, nil
		},
	})
	register(Experiment{
		ID:    "strength",
		Title: "Counter-strength confidence (related work, Smith '81) vs a dedicated resetting-counter table",
		Paper: "§1.1 cites confidence from counter saturation. Identity: a 2-bit counter is weak exactly when its entry last mispredicted, so strength ≡ resetting-counter==0 at congruent geometry; the dedicated table buys the finer thresholds",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "strength", Title: "counter-strength baseline", Scalars: map[string]float64{}}
			// Strength mechanism (2 buckets) per benchmark, pooled. The
			// mechanism reads the predictor's own counters, but in its
			// annotated form that read comes from the captured pre-update
			// state lane, so it shares a session pass with the resetting
			// table like any independent mechanism.
			srs, err := s.Suite(predGshare64K, mechStrength, mechResetting)
			if err != nil {
				return nil, err
			}
			strengthRuns := srs[0].Stats()
			resetSR := srs[1]
			strength := s.Pooled(strengthRuns).Curve()
			reset := s.Pooled(resetSR.Stats()).Curve()
			// The strength method has one natural operating point: its
			// weak-state set. Compare both methods at that set size.
			weakPct := strength[0].CumEventsPct
			o.Scalars["weakSet%branches"] = weakPct
			o.Scalars["strength-coverage%"] = strength[0].CumMissesPct
			o.Scalars["resetting-coverage%"] = reset.MispredsAt(weakPct)
			o.Scalars["resetting@20%"] = reset.MispredsAt(20)
			o.Series = []analysis.Series{
				{Label: "counter-strength", Curve: strength},
				{Label: "resetting", Curve: reset},
			}
			o.Text = fmt.Sprintf(
				"strength — weak-state set holds %.1f%% of branches\n"+
					"  counter-strength coverage there:              %.2f%% of mispredictions\n"+
					"  resetting table at the same set size:         %.2f%% (identical by the\n"+
					"    weak⟺last-access-mispredicted identity at congruent geometry)\n"+
					"  resetting table pushed to 20%% of branches:    %.2f%% — the operating\n"+
					"    range the free strength signal cannot reach\n",
				weakPct, strength[0].CumMissesPct, reset.MispredsAt(weakPct), reset.MispredsAt(20))
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ctxswitch-mix",
		Title: "Multiprogrammed mix: four benchmarks time-sliced through shared tables",
		Paper: "§5.4 models switches as reinitialisation; this runs real interleaving (quantum sweep) to show table pollution directly",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ctxswitch-mix", Title: "multiprogrammed mix", Scalars: map[string]float64{}}
			mixNames := []string{"groff", "real_gcc", "jpeg_play", "sdet"}
			mkMix := func(quantum uint64) (trace.Source, error) {
				srcs := make([]trace.Source, 0, len(mixNames))
				for _, name := range mixNames {
					spec, err := workload.ByName(name)
					if err != nil {
						return nil, err
					}
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					srcs = append(srcs, src)
				}
				return trace.Interleave(quantum, srcs...), nil
			}
			// Solo baseline: equal-weight composite of the four benchmarks
			// run with private tables — read from the cached suite pass.
			oneSR, err := s.SuiteOne(predGshare64K, mechOneLevel(core.IndexPCxorBHR))
			if err != nil {
				return nil, err
			}
			var soloRuns []analysis.BucketStats
			for _, name := range mixNames {
				res, err := oneSR.ByName(name)
				if err != nil {
					return nil, err
				}
				soloRuns = append(soloRuns, res.Buckets)
			}
			solo := s.Pooled(soloRuns).Curve()
			o.Series = append(o.Series, analysis.Series{Label: "solo", Curve: solo})
			o.Scalars["solo@20%"] = solo.MispredsAt(20)
			for _, quantum := range []uint64{100_000, 10_000, 1_000} {
				src, err := mkMix(quantum)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(src, predictor.Gshare64K(), core.PaperOneLevel(core.IndexPCxorBHR))
				if err != nil {
					return nil, err
				}
				c := s.SingleRun(res.Buckets).Curve()
				label := fmt.Sprintf("mix-q%d", quantum)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
				o.Scalars[label+"-missRate%"] = 100 * res.MissRate()
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "replication",
		Title: "Seed replication: headline scalars across independent workload seeds",
		Paper: "robustness check — the paper's conclusions should not hinge on one trace sample",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "replication", Title: "seed replication", Scalars: map[string]float64{}}
			const replicas = 3
			var b strings.Builder
			b.WriteString("replica  gshare64K-miss%  BHRxorPC@20%  Reset@20%\n")
			var missMin, missMax, idealMin, idealMax, resetMin, resetMax float64
			for rep := 0; rep < replicas; rep++ {
				var idealRuns, resetRuns []analysis.BucketStats
				var missSum float64
				var nspecs int
				if rep == 0 {
					// Replica 0 is the standard suite: read it from the
					// session's pass cache.
					rs, err := s.Suite(predGshare64K, mechOneLevel(core.IndexPCxorBHR), mechResetting)
					if err != nil {
						return nil, err
					}
					for _, run := range rs[0].Runs {
						missSum += run.MissRate()
					}
					idealRuns = rs[0].Stats()
					resetRuns = rs[1].Stats()
					nspecs = len(rs[0].Runs)
				} else {
					// Mutated-seed replicas stream once each, training both
					// mechanisms in a single batched pass; the buffers are
					// not worth retaining, so they bypass the global cache.
					specs := workload.Suite()
					for i := range specs {
						specs[i].Seed += uint64(rep) * 0x9E37 // distinct structural+walk seeds
					}
					for _, spec := range specs {
						src, err := spec.FiniteSource(s.Config().Branches)
						if err != nil {
							return nil, err
						}
						rs, err := sim.RunBatch(src, predictor.Gshare64K(), []core.Mechanism{
							core.PaperOneLevel(core.IndexPCxorBHR),
							core.PaperResetting(),
						})
						if err != nil {
							return nil, err
						}
						missSum += rs[0].MissRate()
						idealRuns = append(idealRuns, rs[0].Buckets)
						resetRuns = append(resetRuns, rs[1].Buckets)
					}
					nspecs = len(specs)
				}
				miss := 100 * missSum / float64(nspecs)
				ideal := s.Pooled(idealRuns).Curve().MispredsAt(20)
				reset := s.Pooled(resetRuns).Curve().MispredsAt(20)
				fmt.Fprintf(&b, "%7d  %15.2f  %12.1f  %9.1f\n", rep, miss, ideal, reset)
				if rep == 0 {
					missMin, missMax = miss, miss
					idealMin, idealMax = ideal, ideal
					resetMin, resetMax = reset, reset
				} else {
					missMin, missMax = min2(missMin, miss), max2(missMax, miss)
					idealMin, idealMax = min2(idealMin, ideal), max2(idealMax, ideal)
					resetMin, resetMax = min2(resetMin, reset), max2(resetMax, reset)
				}
			}
			o.Scalars["miss%-spread"] = missMax - missMin
			o.Scalars["ideal@20%-spread"] = idealMax - idealMin
			o.Scalars["reset@20%-spread"] = resetMax - resetMin
			o.Scalars["ideal@20%-min"] = idealMin
			fmt.Fprintf(&b, "spread   %15.2f  %12.1f  %9.1f\n",
				missMax-missMin, idealMax-idealMin, resetMax-resetMin)
			o.Text = b.String()
			return o, nil
		},
	})

	register(Experiment{
		ID:    "perbench",
		Title: "Per-benchmark variation band (Fig. 9 generalised to the whole suite)",
		Paper: "Fig. 9 shows only the extremes (JPEG best, GCC worst) and notes considerable variation",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "perbench", Title: "per-benchmark variation", Scalars: map[string]float64{}}
			sr, err := s.SuiteOne(predGshare64K, mechOneLevel(core.IndexPCxorBHR))
			if err != nil {
				return nil, err
			}
			var curves []analysis.Curve
			var names []string
			for _, res := range sr.Runs {
				c := s.SingleRun(res.Buckets).Curve()
				curves = append(curves, c)
				names = append(names, res.Benchmark)
				o.Series = append(o.Series, analysis.Series{Label: res.Benchmark, Curve: c})
				o.Scalars[res.Benchmark+"@20%"] = c.MispredsAt(20)
			}
			xs := []float64{5, 10, 20, 40}
			band := analysis.BuildBand(curves, xs)
			o.Scalars["spread@20%"] = band.Spread(20)
			o.Text = "perbench — best one-level method, ideal reduction, per benchmark\n" +
				band.Format(names) + "\n" +
				analysis.FormatFigure("per-benchmark curves", o.Series, xs)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "multilevel",
		Title: "Multi-level confidence classes (the §1 generalisation, four levels)",
		Paper: "\"one could divide the branches into multiple sets with a range of confidence levels\" — not pursued in the paper",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "multilevel", Title: "multi-level confidence", Scalars: map[string]float64{}}
			ladder := []uint64{1, 8, 16}
			// The level split is a pure partition of the resetting-counter
			// buckets, so it derives exactly from the cached suite pass.
			sr, err := s.SuiteOne(predGshare64K, mechResetting)
			if err != nil {
				return nil, err
			}
			agg := make([]sim.LevelTally, len(ladder)+1)
			for _, run := range sr.Runs {
				res := sim.DeriveMulti(run, ladder)
				// Equal-weight compositing: normalise each benchmark to
				// unit branch mass before summing.
				total := float64(res.Branches())
				misses := float64(res.Misses())
				for i, l := range res.Levels {
					agg[i].Branches += uint64(1e6 * float64(l.Branches) / total)
					if misses > 0 {
						agg[i].Misses += uint64(1e6 * float64(l.Misses) / misses)
					}
				}
			}
			var b strings.Builder
			b.WriteString("level  description                %branches  %mispredictions  enrichment\n")
			var totB, totM float64
			for _, l := range agg {
				totB += float64(l.Branches)
				totM += float64(l.Misses)
			}
			desc := []string{
				"count 0 (just mispredicted)",
				"counts 1-7",
				"counts 8-15",
				"count 16 (saturated)",
			}
			for i, l := range agg {
				bp := 100 * float64(l.Branches) / totB
				mp := 100 * float64(l.Misses) / totM
				enrich := 0.0
				if bp > 0 {
					enrich = mp / bp
				}
				fmt.Fprintf(&b, "%5d  %-26s %9.2f  %15.2f  %9.2fx\n", i, desc[i], bp, mp, enrich)
				o.Scalars[fmt.Sprintf("level%d-branches%%", i)] = bp
				o.Scalars[fmt.Sprintf("level%d-mispreds%%", i)] = mp
			}
			o.Text = b.String()
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ctxswitch",
		Title: "Context-switch CT treatment: keep vs flush-to-ones vs flush-to-zeros vs mark-oldest (§5.4 conjecture)",
		Paper: "conjecture: keeping CIRs but setting the oldest bit to 1 performs like full nonzero reinitialisation",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ctxswitch", Title: "context switches", Scalars: map[string]float64{}}
			// Switch every 64k branches: a few dozen switches per run.
			const interval = 64_000
			policies := []struct {
				label string
				init  core.InitPolicy
				apply func(core.Mechanism)
			}{
				{"keep", core.InitOnes, nil},
				{"flush-ones", core.InitOnes, func(m core.Mechanism) { m.Reset() }},
				{"flush-zeros", core.InitZeros, func(m core.Mechanism) { m.Reset() }},
				{"mark-oldest", core.InitOnes, func(m core.Mechanism) {
					m.(*core.OneLevel).MarkOldest()
				}},
			}
			// One batched walk per benchmark: the flush policies only touch
			// their own mechanism, so all four share the predictor pass.
			perPolicy := make([][]analysis.BucketStats, len(policies))
			for _, spec := range workload.Suite() {
				src, err := s.Source(spec)
				if err != nil {
					return nil, err
				}
				mechs := make([]core.Mechanism, len(policies))
				flushes := make([]sim.FlushPolicy, len(policies))
				for i, pol := range policies {
					mechs[i] = core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, Init: pol.init})
					flushes[i] = sim.FlushPolicy{Name: pol.label, Apply: pol.apply}
				}
				rs, err := sim.RunWithFlushBatch(src, predictor.Gshare64K(), mechs, interval, flushes)
				if err != nil {
					return nil, err
				}
				for i, r := range rs {
					perPolicy[i] = append(perPolicy[i], r.Buckets)
				}
			}
			for i, pol := range policies {
				c := s.Pooled(perPolicy[i]).Curve()
				o.Series = append(o.Series, analysis.Series{Label: pol.label, Curve: c})
				o.Scalars[pol.label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})
}
