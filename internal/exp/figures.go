package exp

import (
	"fmt"
	"math/bits"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// suiteStats runs the whole suite with fresh per-benchmark instances and
// returns the per-benchmark bucket statistics plus the suite result.
func suiteStats(cfg Config, newPred func() predictor.Predictor, newMech func() core.Mechanism) (sim.SuiteResult, error) {
	return sim.RunSuite(sim.SuiteConfig{Branches: cfg.Branches}, newPred, newMech)
}

// staticCurve computes the Fig. 2 static-profile curve: per-static-branch
// statistics under the 64K gshare, composited with distinct bucket spaces.
func staticCurve(cfg Config) (analysis.Curve, error) {
	sr, err := suiteStats(cfg,
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.NewStaticProfile() })
	if err != nil {
		return nil, err
	}
	return analysis.BuildCurve(analysis.CompositeDistinct(sr.Stats())), nil
}

// oneLevelCurve computes a pooled-composite curve for a one-level CIR
// mechanism under the 64K gshare with the ideal (sorted) reduction.
func oneLevelCurve(cfg Config, scheme core.IndexScheme) (analysis.Curve, error) {
	sr, err := suiteStats(cfg,
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.PaperOneLevel(scheme) })
	if err != nil {
		return nil, err
	}
	return analysis.BuildCurve(analysis.CompositePooled(sr.Stats())), nil
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Static (profile) confidence: cumulative mispredictions vs dynamic branches",
		Paper: "knee near (25.2, 70.6); 20% of branches capture ~63% of mispredictions",
		Run: func(cfg Config) (*Output, error) {
			c, err := staticCurve(cfg)
			if err != nil {
				return nil, err
			}
			o := &Output{
				ID: "fig2", Title: "static confidence",
				Series:  []analysis.Series{{Label: "static", Curve: c}},
				Scalars: map[string]float64{"mispreds@20%": c.MispredsAt(20)},
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "One-level dynamic confidence (ideal reduction): PC vs BHR vs PCxorBHR",
		Paper: "at 20%: PCxorBHR 89%, BHR 85%, PC 72%; static ~63%; zero bucket ~80% of branches",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig5", Title: "one-level methods", Scalars: map[string]float64{}}
			static, err := staticCurve(cfg)
			if err != nil {
				return nil, err
			}
			o.Series = append(o.Series, analysis.Series{Label: "static", Curve: static})
			for _, scheme := range core.OneLevelSchemes() {
				c, err := oneLevelCurve(cfg, scheme)
				if err != nil {
					return nil, err
				}
				o.Series = append(o.Series, analysis.Series{Label: scheme.String(), Curve: c})
				o.Scalars[scheme.String()+"@20%"] = c.MispredsAt(20)
			}
			// Zero-bucket share for the best method: the all-zeros CIR.
			best := o.Series[len(o.Series)-1].Curve
			for _, p := range best {
				if p.Key.Bucket == 0 {
					o.Scalars["zeroBucketBranches%"] = p.EventsPct
					o.Scalars["zeroBucketMispreds%"] = p.MissesPct
					break
				}
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig6",
		Title: "Two-level dynamic confidence (ideal reduction): three variants",
		Paper: "best: PCxorBHR→CIR; PC→CIR briefly competitive in the 5-10% region",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig6", Title: "two-level methods", Scalars: map[string]float64{}}
			static, err := staticCurve(cfg)
			if err != nil {
				return nil, err
			}
			o.Series = append(o.Series, analysis.Series{Label: "static", Curve: static})
			variants := []struct {
				s1 core.IndexScheme
				s2 core.SecondIndex
			}{
				{core.IndexPC, core.L2CIR},
				{core.IndexPCxorBHR, core.L2CIR},
				{core.IndexPCxorBHR, core.L2CIRxorPCxorBHR},
			}
			for _, v := range variants {
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: v.s1, Scheme2: v.s2})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				label := fmt.Sprintf("%s-%s", v.s1, v.s2)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Best one-level vs best two-level vs static",
		Paper: "one- and two-level nearly identical (two-level slightly worse); both beat static",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig7", Title: "method comparison", Scalars: map[string]float64{}}
			static, err := staticCurve(cfg)
			if err != nil {
				return nil, err
			}
			one, err := oneLevelCurve(cfg, core.IndexPCxorBHR)
			if err != nil {
				return nil, err
			}
			sr, err := suiteStats(cfg,
				func() predictor.Predictor { return predictor.Gshare64K() },
				func() core.Mechanism {
					return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: core.IndexPCxorBHR, Scheme2: core.L2CIR})
				})
			if err != nil {
				return nil, err
			}
			two := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
			o.Series = []analysis.Series{
				{Label: "static", Curve: static},
				{Label: "BHRxorPC", Curve: one},
				{Label: "BHRxorPC-CIR", Curve: two},
			}
			o.Scalars["static@20%"] = static.MispredsAt(20)
			o.Scalars["1lev@20%"] = one.MispredsAt(20)
			o.Scalars["2lev@20%"] = two.MispredsAt(20)
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Reduction functions on the best one-level method",
		Paper: "resetting tracks ideal closely (same zero bucket); saturating's max bucket absorbs too many mispredictions; ones-count between",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig8", Title: "reduction functions", Scalars: map[string]float64{}}
			// Ideal and ones-count derive from the same full-CIR run.
			sr, err := suiteStats(cfg,
				func() predictor.Predictor { return predictor.Gshare64K() },
				func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) })
			if err != nil {
				return nil, err
			}
			pooled := analysis.CompositePooled(sr.Stats())
			ideal := analysis.BuildCurve(pooled)
			ones := analysis.BuildCurve(pooled.MergeBuckets(func(b uint64) uint64 {
				return uint64(bits.OnesCount64(b))
			}))
			o.Series = append(o.Series,
				analysis.Series{Label: "BHRxorPC (ideal)", Curve: ideal},
				analysis.Series{Label: "BHRxorPC.1Cnt", Curve: ones},
			)
			for _, kind := range []core.CounterKind{core.Saturating, core.Resetting} {
				kind := kind
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewCounterTable(core.CounterConfig{Kind: kind, Scheme: core.IndexPCxorBHR})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				o.Series = append(o.Series, analysis.Series{Label: "BHRxorPC." + kind.String(), Curve: c})
				o.Scalars[kind.String()+"@20%"] = c.MispredsAt(20)
			}
			o.Scalars["ideal@20%"] = ideal.MispredsAt(20)
			o.Scalars["1Cnt@20%"] = ones.MispredsAt(20)
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "table1",
		Title: "Resetting-counter statistics (17 rows, counts 0-16)",
		Paper: "count 0: 41.7% of mispreds in 4.28% of refs; counts 0-15: 89.3% in 20.3%",
		Run: func(cfg Config) (*Output, error) {
			sr, err := suiteStats(cfg,
				func() predictor.Predictor { return predictor.Gshare64K() },
				func() core.Mechanism { return core.PaperResetting() })
			if err != nil {
				return nil, err
			}
			pooled := analysis.CompositePooled(sr.Stats())
			rows := analysis.CounterRows(pooled, 16)
			o := &Output{
				ID: "table1", Title: "resetting-counter statistics",
				Rows: rows,
				Scalars: map[string]float64{
					"count0CumMispreds%":   rows[0].CumMissesPct,
					"count0CumRefs%":       rows[0].CumRefsPct,
					"count0-15CumMispreds": rows[15].CumMissesPct,
					"count0-15CumRefs":     rows[15].CumRefsPct,
				},
				Text: analysis.FormatCounterTable(rows),
			}
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Best vs worst benchmark (jpeg_play vs real_gcc), best one-level + ideal reduction",
		Paper: "considerable variation; zero buckets hold similar misprediction fractions but different branch fractions",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig9", Title: "per-benchmark extremes", Scalars: map[string]float64{}}
			for _, name := range []string{"jpeg_play", "real_gcc"} {
				spec, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				src, err := spec.FiniteSource(cfg.Branches)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(src, predictor.Gshare64K(), core.PaperOneLevel(core.IndexPCxorBHR))
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.Single(res.Buckets))
				o.Series = append(o.Series, analysis.Series{Label: name, Curve: c})
				o.Scalars[name+"@20%"] = c.MispredsAt(20)
				o.Scalars[name+"-missRate"] = res.MissRate()
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "Small CIR tables (resetting counters, PCxorBHR) under the 4K gshare",
		Paper: "graceful degradation; 4096-entry CT captures ~75% of mispredictions at 20% of branches",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig10", Title: "small tables", Scalars: map[string]float64{}}
			for _, bitsN := range []uint{12, 11, 10, 9, 8, 7} {
				bitsN := bitsN
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare4K() },
					func() core.Mechanism { return core.SmallResetting(bitsN) })
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				label := fmt.Sprintf("%d", 1<<bitsN)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "CT initialisation: ones vs zeros vs lastbit vs random (ideal reduction)",
		Paper: "ones, lastbit and random similar; zeros clearly worse",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "fig11", Title: "initial state", Scalars: map[string]float64{}}
			for _, pol := range core.InitPolicies() {
				pol := pol
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, Init: pol})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				o.Series = append(o.Series, analysis.Series{Label: pol.String(), Curve: c})
				o.Scalars[pol.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})
}
