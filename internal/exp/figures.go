package exp

import (
	"fmt"
	"math/bits"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
)

// staticCurve computes the Fig. 2 static-profile curve: per-static-branch
// statistics under the 64K gshare, composited with distinct bucket spaces.
func staticCurve(s *Session) (analysis.Curve, error) {
	sr, err := s.SuiteOne(predGshare64K, mechStatic)
	if err != nil {
		return nil, err
	}
	return s.Distinct(sr.Stats()).Curve(), nil
}

// oneLevelCurve computes a pooled-composite curve for a one-level CIR
// mechanism under the 64K gshare with the ideal (sorted) reduction.
func oneLevelCurve(s *Session, scheme core.IndexScheme) (analysis.Curve, error) {
	sr, err := s.SuiteOne(predGshare64K, mechOneLevel(scheme))
	if err != nil {
		return nil, err
	}
	return s.Pooled(sr.Stats()).Curve(), nil
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Static (profile) confidence: cumulative mispredictions vs dynamic branches",
		Paper: "knee near (25.2, 70.6); 20% of branches capture ~63% of mispredictions",
		Run: func(s *Session) (*Output, error) {
			c, err := staticCurve(s)
			if err != nil {
				return nil, err
			}
			o := &Output{
				ID: "fig2", Title: "static confidence",
				Series:  []analysis.Series{{Label: "static", Curve: c}},
				Scalars: map[string]float64{"mispreds@20%": c.MispredsAt(20)},
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "One-level dynamic confidence (ideal reduction): PC vs BHR vs PCxorBHR",
		Paper: "at 20%: PCxorBHR 89%, BHR 85%, PC 72%; static ~63%; zero bucket ~80% of branches",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig5", Title: "one-level methods", Scalars: map[string]float64{}}
			schemes := core.OneLevelSchemes()
			// One batched declaration: static plus all three index schemes
			// share a single predictor pass per benchmark.
			mechs := []MechSpec{mechStatic}
			for _, scheme := range schemes {
				mechs = append(mechs, mechOneLevel(scheme))
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			static := s.Distinct(rs[0].Stats()).Curve()
			o.Series = append(o.Series, analysis.Series{Label: "static", Curve: static})
			for i, scheme := range schemes {
				c := s.Pooled(rs[i+1].Stats()).Curve()
				o.Series = append(o.Series, analysis.Series{Label: scheme.String(), Curve: c})
				o.Scalars[scheme.String()+"@20%"] = c.MispredsAt(20)
			}
			// Zero-bucket share for the best method: the all-zeros CIR.
			best := o.Series[len(o.Series)-1].Curve
			for _, p := range best {
				if p.Key.Bucket == 0 {
					o.Scalars["zeroBucketBranches%"] = p.EventsPct
					o.Scalars["zeroBucketMispreds%"] = p.MissesPct
					break
				}
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig6",
		Title: "Two-level dynamic confidence (ideal reduction): three variants",
		Paper: "best: PCxorBHR→CIR; PC→CIR briefly competitive in the 5-10% region",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig6", Title: "two-level methods", Scalars: map[string]float64{}}
			variants := []struct {
				s1 core.IndexScheme
				s2 core.SecondIndex
			}{
				{core.IndexPC, core.L2CIR},
				{core.IndexPCxorBHR, core.L2CIR},
				{core.IndexPCxorBHR, core.L2CIRxorPCxorBHR},
			}
			mechs := []MechSpec{mechStatic}
			for _, v := range variants {
				mechs = append(mechs, mechTwoLevel(v.s1, v.s2))
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			static := s.Distinct(rs[0].Stats()).Curve()
			o.Series = append(o.Series, analysis.Series{Label: "static", Curve: static})
			for i, v := range variants {
				c := s.Pooled(rs[i+1].Stats()).Curve()
				label := fmt.Sprintf("%s-%s", v.s1, v.s2)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Best one-level vs best two-level vs static",
		Paper: "one- and two-level nearly identical (two-level slightly worse); both beat static",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig7", Title: "method comparison", Scalars: map[string]float64{}}
			rs, err := s.Suite(predGshare64K,
				mechStatic,
				mechOneLevel(core.IndexPCxorBHR),
				mechTwoLevel(core.IndexPCxorBHR, core.L2CIR))
			if err != nil {
				return nil, err
			}
			static := s.Distinct(rs[0].Stats()).Curve()
			one := s.Pooled(rs[1].Stats()).Curve()
			two := s.Pooled(rs[2].Stats()).Curve()
			o.Series = []analysis.Series{
				{Label: "static", Curve: static},
				{Label: "BHRxorPC", Curve: one},
				{Label: "BHRxorPC-CIR", Curve: two},
			}
			o.Scalars["static@20%"] = static.MispredsAt(20)
			o.Scalars["1lev@20%"] = one.MispredsAt(20)
			o.Scalars["2lev@20%"] = two.MispredsAt(20)
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Reduction functions on the best one-level method",
		Paper: "resetting tracks ideal closely (same zero bucket); saturating's max bucket absorbs too many mispredictions; ones-count between",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig8", Title: "reduction functions", Scalars: map[string]float64{}}
			kinds := []core.CounterKind{core.Saturating, core.Resetting}
			mechs := []MechSpec{mechOneLevel(core.IndexPCxorBHR)}
			for _, kind := range kinds {
				kind := kind
				mechs = append(mechs, Mech(func() core.Mechanism {
					return core.NewCounterTable(core.CounterConfig{Kind: kind, Scheme: core.IndexPCxorBHR})
				}))
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			// Ideal and ones-count derive from the same full-CIR run (and, on
			// a cold build, from one shared pooled composite).
			cs := s.Pooled(rs[0].Stats())
			ideal := cs.Curve()
			ones := cs.Merged("1cnt", func(b uint64) uint64 {
				return uint64(bits.OnesCount64(b))
			})
			o.Series = append(o.Series,
				analysis.Series{Label: "BHRxorPC (ideal)", Curve: ideal},
				analysis.Series{Label: "BHRxorPC.1Cnt", Curve: ones},
			)
			for i, kind := range kinds {
				c := s.Pooled(rs[i+1].Stats()).Curve()
				o.Series = append(o.Series, analysis.Series{Label: "BHRxorPC." + kind.String(), Curve: c})
				o.Scalars[kind.String()+"@20%"] = c.MispredsAt(20)
			}
			o.Scalars["ideal@20%"] = ideal.MispredsAt(20)
			o.Scalars["1Cnt@20%"] = ones.MispredsAt(20)
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "table1",
		Title: "Resetting-counter statistics (17 rows, counts 0-16)",
		Paper: "count 0: 41.7% of mispreds in 4.28% of refs; counts 0-15: 89.3% in 20.3%",
		Run: func(s *Session) (*Output, error) {
			sr, err := s.SuiteOne(predGshare64K, mechResetting)
			if err != nil {
				return nil, err
			}
			pooled := s.Pooled(sr.Stats()).Stats()
			rows := analysis.CounterRows(pooled, 16)
			o := &Output{
				ID: "table1", Title: "resetting-counter statistics",
				Rows: rows,
				Scalars: map[string]float64{
					"count0CumMispreds%":   rows[0].CumMissesPct,
					"count0CumRefs%":       rows[0].CumRefsPct,
					"count0-15CumMispreds": rows[15].CumMissesPct,
					"count0-15CumRefs":     rows[15].CumRefsPct,
				},
				Text: analysis.FormatCounterTable(rows),
			}
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Best vs worst benchmark (jpeg_play vs real_gcc), best one-level + ideal reduction",
		Paper: "considerable variation; zero buckets hold similar misprediction fractions but different branch fractions",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig9", Title: "per-benchmark extremes", Scalars: map[string]float64{}}
			// Per-benchmark runs come straight out of the cached suite pass.
			sr, err := s.SuiteOne(predGshare64K, mechOneLevel(core.IndexPCxorBHR))
			if err != nil {
				return nil, err
			}
			for _, name := range []string{"jpeg_play", "real_gcc"} {
				res, err := sr.ByName(name)
				if err != nil {
					return nil, err
				}
				c := s.SingleRun(res.Buckets).Curve()
				o.Series = append(o.Series, analysis.Series{Label: name, Curve: c})
				o.Scalars[name+"@20%"] = c.MispredsAt(20)
				o.Scalars[name+"-missRate"] = res.MissRate()
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "Small CIR tables (resetting counters, PCxorBHR) under the 4K gshare",
		Paper: "graceful degradation; 4096-entry CT captures ~75% of mispredictions at 20% of branches",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig10", Title: "small tables", Scalars: map[string]float64{}}
			sizes := []uint{12, 11, 10, 9, 8, 7}
			mechs := make([]MechSpec, len(sizes))
			for i, bitsN := range sizes {
				bitsN := bitsN
				mechs[i] = Mech(func() core.Mechanism { return core.SmallResetting(bitsN) })
			}
			rs, err := s.Suite(predGshare4K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, bitsN := range sizes {
				c := s.Pooled(rs[i].Stats()).Curve()
				label := fmt.Sprintf("%d", 1<<bitsN)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "CT initialisation: ones vs zeros vs lastbit vs random (ideal reduction)",
		Paper: "ones, lastbit and random similar; zeros clearly worse",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "fig11", Title: "initial state", Scalars: map[string]float64{}}
			policies := core.InitPolicies()
			mechs := make([]MechSpec, len(policies))
			for i, pol := range policies {
				pol := pol
				mechs[i] = Mech(func() core.Mechanism {
					return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, Init: pol})
				})
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, pol := range policies {
				c := s.Pooled(rs[i].Stats()).Curve()
				o.Series = append(o.Series, analysis.Series{Label: pol.String(), Curve: c})
				o.Scalars[pol.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})
}
