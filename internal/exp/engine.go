package exp

import (
	"sync"
	"sync/atomic"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// The session engine is the single-pass heart of the experiment registry.
// Experiments no longer run private suite sweeps; they declare the
// (predictor, mechanism-set) pairs they need against a shared Session,
// which
//
//   - replays benchmarks from the process-wide materialized-trace cache
//     (workload.Materialize) instead of regenerating the synthetic walk,
//   - routes suite passes through the two-stage annotated engine
//     (sim.RunSuiteAnnotated): the predictor walks each benchmark once per
//     predictor config — memoized process-wide as a compact annotated
//     stream — and mechanisms train by replaying the stream with no
//     predictor in the loop (Config.NoAnnotate falls back to the
//     interleaved sim.RunSuiteBatch engine), and
//   - memoizes every (predictor, mechanism) suite pass, so experiments
//     sharing a configuration — concurrent or sequential — reuse results
//     instead of resimulating.
//
// All sharing is exact: replay, batching and result derivation are
// bit-identical to the direct streaming path (see internal/sim tests and
// determinism_test.go), so a report produced through a shared Session is
// byte-identical to one produced by isolated per-experiment runs.

// PredSpec names a predictor configuration and how to build fresh
// instances of it. Key must be unique per configuration; Pred derives it
// from the instance's Name().
type PredSpec struct {
	Key string
	New func() predictor.Predictor
}

// Pred builds a PredSpec keyed by the constructor's instance name.
func Pred(new func() predictor.Predictor) PredSpec {
	return PredSpec{Key: new().Name(), New: new}
}

// MechSpec names a confidence-mechanism configuration and how to build
// fresh instances of it.
type MechSpec struct {
	Key string
	New func() core.Mechanism
}

// Mech builds a MechSpec keyed by the constructor's instance name.
func Mech(new func() core.Mechanism) MechSpec {
	return MechSpec{Key: new().Name(), New: new}
}

// passEntry is one memoized (predictor, mechanism) suite pass. done is
// closed when res/err are final; claimants that find an existing entry
// wait on it instead of resimulating.
type passEntry struct {
	done chan struct{}
	res  sim.SuiteResult
	err  error
}

// Session owns the pass cache for one report run. It is safe for
// concurrent use by experiments running in parallel.
type Session struct {
	cfg Config

	mu     sync.Mutex
	passes map[string]*passEntry

	hits, misses atomic.Uint64
}

// NewSession returns an empty session for the given configuration.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg, passes: make(map[string]*passEntry)}
}

// Config returns the session's run configuration.
func (s *Session) Config() Config { return s.cfg }

// Branches resolves the per-benchmark branch budget (the suite default
// when the config leaves it zero).
func (s *Session) Branches() uint64 {
	if s.cfg.Branches == 0 {
		return workload.DefaultBranches
	}
	return s.cfg.Branches
}

// Source returns a replay cursor over spec's materialized trace at the
// session budget. Repeated calls (and concurrent experiments) share one
// cached buffer; each cursor replays from the beginning.
func (s *Session) Source(spec workload.Spec) (trace.Source, error) {
	buf, err := workload.Materialize(spec, s.cfg.Branches)
	if err != nil {
		return nil, err
	}
	return buf.Source(), nil
}

// suiteConfig is the session's whole-suite run configuration: the
// session budget with benchmarks fed from the materialized-trace cache,
// for both the interleaved engine (Source) and the annotated two-stage
// engine (Buffer). Under Config.SegmentBranches the materialized-trace
// cache is bypassed entirely — benchmarks stream straight from their
// generators (the sim default Source), so a long-horizon run never holds
// a whole trace in memory.
func (s *Session) suiteConfig() sim.SuiteConfig {
	if s.cfg.SegmentBranches > 0 {
		return sim.SuiteConfig{
			Branches:        s.cfg.Branches,
			NoTally:         s.cfg.NoTally,
			SegmentBranches: s.cfg.SegmentBranches,
		}
	}
	return sim.SuiteConfig{
		Branches: s.cfg.Branches,
		Source: func(spec workload.Spec, branches uint64) (trace.Source, error) {
			buf, err := workload.Materialize(spec, branches)
			if err != nil {
				return nil, err
			}
			return buf.Source(), nil
		},
		Buffer:  workload.Materialize,
		NoTally: s.cfg.NoTally,
	}
}

// runSuite dispatches a suite pass to the configured engine: the annotated
// two-stage engine by default, the interleaved single-pass engine under
// Config.NoAnnotate. Both produce byte-identical results.
func (s *Session) runSuite(pred PredSpec, newMechs []func() core.Mechanism) ([]sim.SuiteResult, error) {
	if s.cfg.NoAnnotate {
		return sim.RunSuiteBatch(s.suiteConfig(), pred.New, newMechs)
	}
	return sim.RunSuiteAnnotated(s.suiteConfig(), pred.Key, pred.New, newMechs)
}

// Suite returns one whole-suite result per mechanism, all simulated under
// pred, batching every mechanism not already cached into a single
// predictor pass per benchmark. Results are index-aligned with mechs and
// identical to per-mechanism sim.RunSuite calls.
//
// Concurrent callers requesting overlapping sets never duplicate a pass:
// the first claimant of a (predictor, mechanism) key simulates it, later
// ones block on the entry.
func (s *Session) Suite(pred PredSpec, mechs ...MechSpec) ([]sim.SuiteResult, error) {
	entries := make([]*passEntry, len(mechs))
	var missing []int // indices whose entries this call must fill
	s.mu.Lock()
	for i, m := range mechs {
		key := pred.Key + "\x1f" + m.Key
		e := s.passes[key]
		if e == nil {
			e = &passEntry{done: make(chan struct{})}
			s.passes[key] = e
			missing = append(missing, i)
			s.misses.Add(1)
		} else {
			s.hits.Add(1)
		}
		entries[i] = e
	}
	s.mu.Unlock()

	if len(missing) > 0 {
		newMechs := make([]func() core.Mechanism, len(missing))
		for j, i := range missing {
			newMechs[j] = mechs[i].New
		}
		res, err := s.runSuite(pred, newMechs)
		for j, i := range missing {
			e := entries[i]
			if err != nil {
				e.err = err
			} else {
				e.res = res[j]
			}
			close(e.done)
		}
	}

	out := make([]sim.SuiteResult, len(mechs))
	for i, e := range entries {
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		out[i] = e.res
	}
	return out, nil
}

// SuiteOne is Suite for a single mechanism.
func (s *Session) SuiteOne(pred PredSpec, mech MechSpec) (sim.SuiteResult, error) {
	rs, err := s.Suite(pred, mech)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	return rs[0], nil
}

// Stats reports the session's pass-cache hits and misses so far.
func (s *Session) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Shared predictor and mechanism specs for the paper's two standard
// predictors and the recurring mechanisms.
var (
	predGshare64K = Pred(func() predictor.Predictor { return predictor.Gshare64K() })
	predGshare4K  = Pred(func() predictor.Predictor { return predictor.Gshare4K() })

	mechStatic    = Mech(func() core.Mechanism { return core.NewStaticProfile() })
	mechResetting = Mech(func() core.Mechanism { return core.PaperResetting() })

	// mechStrength is the predictor-coupled counter-strength mechanism in
	// its annotated form: it reads the captured pre-update counter state,
	// so it batches into shared passes like any independent mechanism.
	mechStrength = Mech(func() core.Mechanism { return core.NewAnnotatedStrength() })
)

// mechOneLevel is the paper one-level CIR mechanism for a given index
// scheme.
func mechOneLevel(scheme core.IndexScheme) MechSpec {
	return Mech(func() core.Mechanism { return core.PaperOneLevel(scheme) })
}

// mechTwoLevel is a two-level mechanism variant.
func mechTwoLevel(s1 core.IndexScheme, s2 core.SecondIndex) MechSpec {
	return Mech(func() core.Mechanism {
		return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: s1, Scheme2: s2})
	})
}
