package exp

import (
	"sync/atomic"

	"branchconf/internal/core"
	"branchconf/internal/memo"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// The session engine is the single-pass heart of the experiment registry.
// Experiments no longer run private suite sweeps; they declare the
// (predictor, mechanism-set) pairs they need against a shared Session,
// which
//
//   - replays benchmarks from the process-wide materialized-trace cache
//     (workload.Materialize) instead of regenerating the synthetic walk,
//   - routes suite passes through the two-stage annotated engine
//     (sim.RunSuiteAnnotated): the predictor walks each benchmark once per
//     predictor config — memoized process-wide as a compact annotated
//     stream — and mechanisms train by replaying the stream with no
//     predictor in the loop (Config.NoAnnotate falls back to the
//     interleaved sim.RunSuiteBatch engine), and
//   - memoizes every (predictor, mechanism) suite pass, so experiments
//     sharing a configuration — concurrent or sequential — reuse results
//     instead of resimulating.
//
// All sharing is exact: replay, batching and result derivation are
// bit-identical to the direct streaming path (see internal/sim tests and
// determinism_test.go), so a report produced through a shared Session is
// byte-identical to one produced by isolated per-experiment runs.

// PredSpec names a predictor configuration and how to build fresh
// instances of it. Key must be unique per configuration; Pred derives it
// from the instance's Name().
type PredSpec struct {
	Key string
	New func() predictor.Predictor
}

// Pred builds a PredSpec keyed by the constructor's instance name.
func Pred(new func() predictor.Predictor) PredSpec {
	return PredSpec{Key: new().Name(), New: new}
}

// MechSpec names a confidence-mechanism configuration and how to build
// fresh instances of it.
type MechSpec struct {
	Key string
	New func() core.Mechanism
}

// Mech builds a MechSpec keyed by the constructor's instance name.
func Mech(new func() core.Mechanism) MechSpec {
	return MechSpec{Key: new().Name(), New: new}
}

// passKey distinguishes session pass entries from other key kinds when a
// ByteLRU is shared; the string is pred.Key + "\x1f" + mech.Key.
type passKey string

// Session owns the pass cache for one run configuration. It is safe for
// concurrent use by experiments running in parallel, and — unlike the
// original per-report incarnation — is built to live for the process: the
// pass cache is a memo.ByteLRU, so completed passes can be evicted under a
// resident-bytes bound (SetPassBound) and an errored pass is dropped
// rather than negatively cached, letting a later claimant retry it. A
// resident daemon shares one Session per Config across every request that
// names that configuration (see SessionPool), which is what coalesces
// concurrent identical work onto one computation.
type Session struct {
	cfg Config

	passes memo.ByteLRU

	hits, misses atomic.Uint64
}

// NewSession returns an empty session for the given configuration.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg}
}

// Config returns the session's run configuration.
func (s *Session) Config() Config { return s.cfg }

// Branches resolves the per-benchmark branch budget (the suite default
// when the config leaves it zero).
func (s *Session) Branches() uint64 {
	if s.cfg.Branches == 0 {
		return workload.DefaultBranches
	}
	return s.cfg.Branches
}

// Source returns a replay cursor over spec's materialized trace at the
// session budget. Repeated calls (and concurrent experiments) share one
// cached buffer; each cursor replays from the beginning.
func (s *Session) Source(spec workload.Spec) (trace.Source, error) {
	buf, err := workload.Materialize(spec, s.cfg.Branches)
	if err != nil {
		return nil, err
	}
	return buf.Source(), nil
}

// suiteConfig is the session's whole-suite run configuration: the
// session budget with benchmarks fed from the materialized-trace cache,
// for both the interleaved engine (Source) and the annotated two-stage
// engine (Buffer). Under Config.SegmentBranches the materialized-trace
// cache is bypassed entirely — benchmarks stream straight from their
// generators (the sim default Source), so a long-horizon run never holds
// a whole trace in memory.
func (s *Session) suiteConfig() sim.SuiteConfig {
	if s.cfg.SegmentBranches > 0 {
		return sim.SuiteConfig{
			Branches:        s.cfg.Branches,
			NoTally:         s.cfg.NoTally,
			SegmentBranches: s.cfg.SegmentBranches,
		}
	}
	return sim.SuiteConfig{
		Branches: s.cfg.Branches,
		Source: func(spec workload.Spec, branches uint64) (trace.Source, error) {
			buf, err := workload.Materialize(spec, branches)
			if err != nil {
				return nil, err
			}
			return buf.Source(), nil
		},
		Buffer:  workload.Materialize,
		NoTally: s.cfg.NoTally,
	}
}

// runSuite dispatches a suite pass to the configured engine: the annotated
// two-stage engine by default, the interleaved single-pass engine under
// Config.NoAnnotate. Both produce byte-identical results.
func (s *Session) runSuite(pred PredSpec, newMechs []func() core.Mechanism) ([]sim.SuiteResult, error) {
	if s.cfg.NoAnnotate {
		return sim.RunSuiteBatch(s.suiteConfig(), pred.New, newMechs)
	}
	return sim.RunSuiteAnnotated(s.suiteConfig(), pred.Key, pred.New, newMechs)
}

// Suite returns one whole-suite result per mechanism, all simulated under
// pred, batching every mechanism not already cached into a single
// predictor pass per benchmark. Results are index-aligned with mechs and
// identical to per-mechanism sim.RunSuite calls.
//
// Concurrent callers requesting overlapping sets never duplicate a pass:
// the first claimant of a (predictor, mechanism) key simulates it, later
// ones block on the entry. Claimants may arrive from distinct requests in
// a resident process — the contract is the same. A pass whose simulation
// fails is published as an error to everyone already waiting on it but is
// dropped from the cache, so the next claimant retries instead of
// inheriting a possibly transient failure for the life of the process.
func (s *Session) Suite(pred PredSpec, mechs ...MechSpec) ([]sim.SuiteResult, error) {
	entries := make([]*memo.Entry, len(mechs))
	var missing []int // indices whose entries this call must fill
	for i, m := range mechs {
		e, owner := s.passes.Claim(passKey(pred.Key + "\x1f" + m.Key))
		if owner {
			missing = append(missing, i)
			s.misses.Add(1)
		} else {
			s.hits.Add(1)
		}
		entries[i] = e
	}

	if len(missing) > 0 {
		newMechs := make([]func() core.Mechanism, len(missing))
		for j, i := range missing {
			newMechs[j] = mechs[i].New
		}
		res, err := s.runSuite(pred, newMechs)
		for j, i := range missing {
			e := entries[i]
			if err != nil {
				e.Err = err
				s.passes.Finish(e, 0)
				continue
			}
			e.Val = res[j]
			s.passes.Finish(e, passBytes(res[j]))
		}
	}

	out := make([]sim.SuiteResult, len(mechs))
	for i, e := range entries {
		<-e.Done
		if e.Err != nil {
			return nil, e.Err
		}
		out[i] = e.Val.(sim.SuiteResult)
	}
	return out, nil
}

// passBytes approximates a cached pass's resident footprint for the LRU
// bound: the per-benchmark run headers plus each bucket tally (map slot,
// key, and tally block).
func passBytes(res sim.SuiteResult) uint64 {
	const runHeader = 64  // Result struct + slice slot + name
	const bucketCost = 48 // map bucket share + uint64 key + *Tally + Tally
	b := uint64(32)
	for _, r := range res.Runs {
		b += runHeader + uint64(len(r.Buckets))*bucketCost
	}
	return b
}

// SetPassBound bounds the session's resident pass-cache bytes; completed
// passes are evicted least-recently-used first (0 = unbounded, the
// one-shot default). A resident process sets this so an unbounded request
// mix cannot grow the pass cache without limit.
func (s *Session) SetPassBound(bytes uint64) { s.passes.SetBound(bytes) }

// PassUsage reports the pass cache's approximate resident bytes and
// evictions so far.
func (s *Session) PassUsage() (resident, evictions uint64) { return s.passes.Usage() }

// SuiteOne is Suite for a single mechanism.
func (s *Session) SuiteOne(pred PredSpec, mech MechSpec) (sim.SuiteResult, error) {
	rs, err := s.Suite(pred, mech)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	return rs[0], nil
}

// Stats reports the session's pass-cache hits and misses so far.
func (s *Session) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Shared predictor and mechanism specs for the paper's two standard
// predictors and the recurring mechanisms.
var (
	predGshare64K = Pred(func() predictor.Predictor { return predictor.Gshare64K() })
	predGshare4K  = Pred(func() predictor.Predictor { return predictor.Gshare4K() })

	mechStatic    = Mech(func() core.Mechanism { return core.NewStaticProfile() })
	mechResetting = Mech(func() core.Mechanism { return core.PaperResetting() })

	// mechStrength is the predictor-coupled counter-strength mechanism in
	// its annotated form: it reads the captured pre-update counter state,
	// so it batches into shared passes like any independent mechanism.
	mechStrength = Mech(func() core.Mechanism { return core.NewAnnotatedStrength() })
)

// mechOneLevel is the paper one-level CIR mechanism for a given index
// scheme.
func mechOneLevel(scheme core.IndexScheme) MechSpec {
	return Mech(func() core.Mechanism { return core.PaperOneLevel(scheme) })
}

// mechTwoLevel is a two-level mechanism variant.
func mechTwoLevel(s1 core.IndexScheme, s2 core.SecondIndex) MechSpec {
	return Mech(func() core.Mechanism {
		return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: s1, Scheme2: s2})
	})
}
