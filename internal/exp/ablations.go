package exp

import (
	"fmt"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
)

// Ablations check the design claims the paper makes in passing: that xor
// indexing beats concatenation, that the global CIR is a poor index, that
// 16-bit CIRs are a reasonable width, and that the dismissed second-level
// index variants really are worse.
func init() {
	register(Experiment{
		ID:    "ablation-index",
		Title: "Index-scheme ablation: every one-level scheme incl. dismissed GCIR and concatenation",
		Paper: "§3.1: xor beats concatenation; global CIR of little value",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "ablation-index", Title: "index schemes", Scalars: map[string]float64{}}
			schemes := []core.IndexScheme{
				core.IndexPC, core.IndexBHR, core.IndexPCxorBHR,
				core.IndexGCIR, core.IndexPCxorGCIR, core.IndexPCconcatBHR,
			}
			for _, scheme := range schemes {
				c, err := oneLevelCurve(cfg, scheme)
				if err != nil {
					return nil, err
				}
				o.Series = append(o.Series, analysis.Series{Label: scheme.String(), Curve: c})
				o.Scalars[scheme.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-cirwidth",
		Title: "CIR width ablation on the best one-level method (ideal reduction)",
		Paper: "the paper fixes n=16; this sweeps 4..32 to expose the trade-off",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "ablation-cirwidth", Title: "CIR widths", Scalars: map[string]float64{}}
			for _, width := range []uint{4, 8, 12, 16, 24, 32} {
				width := width
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, CIRBits: width})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				label := fmt.Sprintf("cir%d", width)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-l2index",
		Title: "Second-level index ablation: all four L2 hash variants",
		Paper: "§3.2 explores 12 combinations and settles on three; this covers the L2 axis",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "ablation-l2index", Title: "second-level indices", Scalars: map[string]float64{}}
			for _, s2 := range []core.SecondIndex{core.L2CIR, core.L2CIRxorPC, core.L2CIRxorBHR, core.L2CIRxorPCxorBHR} {
				s2 := s2
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: core.IndexPCxorBHR, Scheme2: s2})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				o.Series = append(o.Series, analysis.Series{Label: s2.String(), Curve: c})
				o.Scalars[s2.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-countermax",
		Title: "Resetting-counter ceiling ablation (threshold granularity, §5.2)",
		Paper: "larger counters buy slightly finer granularity; the approach is limited",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "ablation-countermax", Title: "counter ceilings", Scalars: map[string]float64{}}
			for _, max := range []uint8{4, 8, 16, 32, 64} {
				max := max
				sr, err := suiteStats(cfg,
					func() predictor.Predictor { return predictor.Gshare64K() },
					func() core.Mechanism {
						return core.NewCounterTable(core.CounterConfig{Kind: core.Resetting, Scheme: core.IndexPCxorBHR, Max: max})
					})
				if err != nil {
					return nil, err
				}
				c := analysis.BuildCurve(analysis.CompositePooled(sr.Stats()))
				label := fmt.Sprintf("max%d", max)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})
}
