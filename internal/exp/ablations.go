package exp

import (
	"fmt"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
)

// Ablations check the design claims the paper makes in passing: that xor
// indexing beats concatenation, that the global CIR is a poor index, that
// 16-bit CIRs are a reasonable width, and that the dismissed second-level
// index variants really are worse.
func init() {
	register(Experiment{
		ID:    "ablation-index",
		Title: "Index-scheme ablation: every one-level scheme incl. dismissed GCIR and concatenation",
		Paper: "§3.1: xor beats concatenation; global CIR of little value",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-index", Title: "index schemes", Scalars: map[string]float64{}}
			schemes := []core.IndexScheme{
				core.IndexPC, core.IndexBHR, core.IndexPCxorBHR,
				core.IndexGCIR, core.IndexPCxorGCIR, core.IndexPCconcatBHR,
			}
			mechs := make([]MechSpec, len(schemes))
			for i, scheme := range schemes {
				mechs[i] = mechOneLevel(scheme)
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, scheme := range schemes {
				c := s.Pooled(rs[i].Stats()).Curve()
				o.Series = append(o.Series, analysis.Series{Label: scheme.String(), Curve: c})
				o.Scalars[scheme.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-cirwidth",
		Title: "CIR width ablation on the best one-level method (ideal reduction)",
		Paper: "the paper fixes n=16; this sweeps 4..32 to expose the trade-off",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-cirwidth", Title: "CIR widths", Scalars: map[string]float64{}}
			widths := []uint{4, 8, 12, 16, 24, 32}
			mechs := make([]MechSpec, len(widths))
			for i, width := range widths {
				width := width
				mechs[i] = Mech(func() core.Mechanism {
					return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, CIRBits: width})
				})
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, width := range widths {
				c := s.Pooled(rs[i].Stats()).Curve()
				label := fmt.Sprintf("cir%d", width)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-l2index",
		Title: "Second-level index ablation: all four L2 hash variants",
		Paper: "§3.2 explores 12 combinations and settles on three; this covers the L2 axis",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-l2index", Title: "second-level indices", Scalars: map[string]float64{}}
			variants := []core.SecondIndex{core.L2CIR, core.L2CIRxorPC, core.L2CIRxorBHR, core.L2CIRxorPCxorBHR}
			mechs := make([]MechSpec, len(variants))
			for i, s2 := range variants {
				mechs[i] = mechTwoLevel(core.IndexPCxorBHR, s2)
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, s2 := range variants {
				c := s.Pooled(rs[i].Stats()).Curve()
				o.Series = append(o.Series, analysis.Series{Label: s2.String(), Curve: c})
				o.Scalars[s2.String()+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-countermax",
		Title: "Resetting-counter ceiling ablation (threshold granularity, §5.2)",
		Paper: "larger counters buy slightly finer granularity; the approach is limited",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-countermax", Title: "counter ceilings", Scalars: map[string]float64{}}
			maxes := []uint8{4, 8, 16, 32, 64}
			mechs := make([]MechSpec, len(maxes))
			for i, max := range maxes {
				max := max
				mechs[i] = Mech(func() core.Mechanism {
					return core.NewCounterTable(core.CounterConfig{Kind: core.Resetting, Scheme: core.IndexPCxorBHR, Max: max})
				})
			}
			rs, err := s.Suite(predGshare64K, mechs...)
			if err != nil {
				return nil, err
			}
			for i, max := range maxes {
				c := s.Pooled(rs[i].Stats()).Curve()
				label := fmt.Sprintf("max%d", max)
				o.Series = append(o.Series, analysis.Series{Label: label, Curve: c})
				o.Scalars[label+"@20%"] = c.MispredsAt(20)
			}
			renderFigure(o)
			return o, nil
		},
	})
}
