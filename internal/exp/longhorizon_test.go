package exp

import (
	"reflect"
	"strings"
	"testing"
)

// TestLongHorizonStreamingMatchesMonolithic: the long-horizon sweep must
// produce byte-identical text whether its suite passes stream in segments
// or materialize whole traces, and it must be opt-in so default report
// runs skip it.
func TestLongHorizonStreamingMatchesMonolithic(t *testing.T) {
	e, err := ByID("longhorizon")
	if err != nil {
		t.Fatal(err)
	}
	if !e.OptIn {
		t.Fatal("longhorizon must be OptIn")
	}
	mono, err := e.RunOnce(Config{Branches: 20000})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := e.RunOnce(Config{Branches: 20000, SegmentBranches: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if mono.Text != stream.Text {
		t.Fatalf("streaming long-horizon sweep diverges:\nmono:\n%s\nstream:\n%s", mono.Text, stream.Text)
	}
	// Three horizons of the budget, each with a miss rate and three
	// coverage columns.
	if lines := strings.Count(mono.Text, "\n"); lines != 4 {
		t.Fatalf("expected header + 3 horizon rows, got %d lines:\n%s", lines, mono.Text)
	}
	for _, h := range []string{"1250", "5000", "20000"} {
		if !strings.Contains(mono.Text, h) {
			t.Errorf("horizon %s missing from sweep:\n%s", h, mono.Text)
		}
	}
}

// TestSessionStreamingSuiteMatches: a whole session configured to stream
// produces the same suite results as a monolithic one — the exp-layer
// wiring of Config.SegmentBranches down to the sim engine.
func TestSessionStreamingSuiteMatches(t *testing.T) {
	mono := NewSession(Config{Branches: 15000})
	stream := NewSession(Config{Branches: 15000, SegmentBranches: 2048})
	a, err := mono.SuiteOne(predGshare64K, mechResetting)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.SuiteOne(predGshare64K, mechResetting)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("streaming session suite diverges from monolithic")
	}
}
