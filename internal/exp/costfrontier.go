package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// §5.3 ends: "We can not make any definite statement about any one table
// size being more cost-effective than another ... because to do so would
// require some knowledge of the application where the confidence method is
// to be used." The cost-split experiments supply that missing application
// model: for a fixed transistor budget split between the predictor (2-bit
// counters) and the confidence table (4-bit resetting counters), they
// measure end metrics — misprediction rate, coverage, and the dual-path
// penalty savings the confidence signal actually buys.
func init() {
	register(Experiment{
		ID:    "ablation-costsplit",
		Title: "Fixed hardware budget split between predictor and confidence table",
		Paper: "answers §5.3's open cost-effectiveness question with the dual-path application as the utility model",
		Run: func(cfg Config) (*Output, error) {
			o := &Output{ID: "ablation-costsplit", Title: "cost split", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("budget 128Kbit: predictor 2-bit counters + CT 4-bit resetting counters\n")
			b.WriteString("pred-entries  ct-entries  miss%  coverage@thr16%  dualpath-savings%\n")
			// 128 Kbit = 2*P + 4*C with P, C powers of two.
			splits := []struct{ predBits, ctBits uint }{
				{16, 0},  // all predictor, no CT (coverage undefined → 0)
				{15, 13}, // 64Kbit predictor + 32Kbit CT... plus slack
				{15, 14}, // 64Kbit + 64Kbit: the balanced split
				{14, 14}, // smaller predictor, same CT
				{13, 15}, // confidence-heavy
			}
			for _, s := range splits {
				var missSum, covSum, saveSum float64
				n := 0
				for _, spec := range workload.Suite() {
					histBits := s.predBits
					mkPred := func() predictor.Predictor { return predictor.NewGshare(s.predBits, histBits) }
					if s.ctBits == 0 {
						src, err := spec.FiniteSource(cfg.Branches)
						if err != nil {
							return nil, err
						}
						res, err := sim.PredictOnly(src, mkPred())
						if err != nil {
							return nil, err
						}
						missSum += res.MissRate()
						n++
						continue
					}
					est := func() *core.Estimator {
						return core.NewEstimator(
							core.NewCounterTable(core.CounterConfig{
								Kind: core.Resetting, Scheme: core.IndexPCxorBHR,
								TableBits: s.ctBits, HistoryBits: histBits,
							}),
							core.CounterReducer{Threshold: 16})
					}
					src, err := spec.FiniteSource(cfg.Branches)
					if err != nil {
						return nil, err
					}
					eres, err := sim.RunEstimator(src, mkPred(), est())
					if err != nil {
						return nil, err
					}
					src2, err := spec.FiniteSource(cfg.Branches)
					if err != nil {
						return nil, err
					}
					dres, err := apps.RunDualPath(src2, mkPred(), est(), apps.DefaultDualPath())
					if err != nil {
						return nil, err
					}
					missSum += float64(eres.Misses) / float64(eres.Branches)
					covSum += eres.Coverage()
					saveSum += dres.PenaltySavings()
					n++
				}
				miss := 100 * missSum / float64(n)
				cov := 100 * covSum / float64(n)
				save := 100 * saveSum / float64(n)
				label := fmt.Sprintf("2^%d+2^%d", s.predBits, s.ctBits)
				fmt.Fprintf(&b, "%12d  %10d  %5.2f  %15.1f  %17.1f\n",
					1<<s.predBits, ctEntries(s.ctBits), miss, cov, save)
				o.Scalars[label+"-miss%"] = miss
				o.Scalars[label+"-savings%"] = save
			}
			b.WriteString("\nThe all-predictor split has the lowest misprediction rate but no\n")
			b.WriteString("confidence signal; splits funding a CT trade a slightly weaker\n")
			b.WriteString("predictor for recoverable mispredictions.\n")
			o.Text = b.String()
			return o, nil
		},
	})
}

func ctEntries(bits uint) int {
	if bits == 0 {
		return 0
	}
	return 1 << bits
}
