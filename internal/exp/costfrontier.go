package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// §5.3 ends: "We can not make any definite statement about any one table
// size being more cost-effective than another ... because to do so would
// require some knowledge of the application where the confidence method is
// to be used." The cost-split experiments supply that missing application
// model: for a fixed transistor budget split between the predictor (2-bit
// counters) and the confidence table (4-bit resetting counters), they
// measure end metrics — misprediction rate, coverage, and the dual-path
// penalty savings the confidence signal actually buys.
func init() {
	register(Experiment{
		ID:    "ablation-costsplit",
		Title: "Fixed hardware budget split between predictor and confidence table",
		Paper: "answers §5.3's open cost-effectiveness question with the dual-path application as the utility model",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-costsplit", Title: "cost split", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("budget 128Kbit: predictor 2-bit counters + CT 4-bit resetting counters\n")
			b.WriteString("pred-entries  ct-entries  miss%  coverage@thr16%  dualpath-savings%\n")
			// 128 Kbit = 2*P + 4*C with P, C powers of two.
			splits := []struct{ predBits, ctBits uint }{
				{16, 0},  // all predictor, no CT (coverage undefined → 0)
				{15, 13}, // 64Kbit predictor + 32Kbit CT... plus slack
				{15, 14}, // 64Kbit + 64Kbit: the balanced split
				{14, 14}, // smaller predictor, same CT
				{13, 15}, // confidence-heavy
			}
			for _, split := range splits {
				split := split
				histBits := split.predBits
				mkPred := func() predictor.Predictor { return predictor.NewGshare(split.predBits, histBits) }
				var missSum, covSum, saveSum float64
				n := 0
				if split.ctBits == 0 {
					// The all-predictor split only needs miss rates, which
					// any cached pass under this predictor supplies.
					sr, err := s.SuiteOne(Pred(mkPred), mechStatic)
					if err != nil {
						return nil, err
					}
					for _, run := range sr.Runs {
						missSum += run.MissRate()
						n++
					}
				} else {
					mech := Mech(func() core.Mechanism {
						return core.NewCounterTable(core.CounterConfig{
							Kind: core.Resetting, Scheme: core.IndexPCxorBHR,
							TableBits: split.ctBits, HistoryBits: histBits,
						})
					})
					sr, err := s.SuiteOne(Pred(mkPred), mech)
					if err != nil {
						return nil, err
					}
					est := func() *core.Estimator {
						return core.NewEstimator(mech.New(), core.CounterReducer{Threshold: 16})
					}
					for _, spec := range workload.Suite() {
						run, err := sr.ByName(spec.Name)
						if err != nil {
							return nil, err
						}
						eres := sim.DeriveEstimator(run, core.CounterReducer{Threshold: 16})
						params := appDualParams(
							fmt.Sprintf("gshare%dx%d", split.predBits, histBits),
							fmt.Sprintf("ctreset%dh%dthr16", split.ctBits, histBits),
							apps.DefaultDualPath())
						counts, err := s.modelCounts(modelKey("appdual", spec.Name, s.Branches(), params), appDualLen, func() ([]uint64, error) {
							src, err := s.Source(spec)
							if err != nil {
								return nil, err
							}
							dres, err := apps.RunDualPath(src, mkPred(), est(), apps.DefaultDualPath())
							if err != nil {
								return nil, err
							}
							return packAppDual(dres), nil
						})
						if err != nil {
							return nil, err
						}
						dres := unpackAppDual(counts)
						missSum += float64(eres.Misses) / float64(eres.Branches)
						covSum += eres.Coverage()
						saveSum += dres.PenaltySavings()
						n++
					}
				}
				miss := 100 * missSum / float64(n)
				cov := 100 * covSum / float64(n)
				save := 100 * saveSum / float64(n)
				label := fmt.Sprintf("2^%d+2^%d", split.predBits, split.ctBits)
				fmt.Fprintf(&b, "%12d  %10d  %5.2f  %15.1f  %17.1f\n",
					1<<split.predBits, ctEntries(split.ctBits), miss, cov, save)
				o.Scalars[label+"-miss%"] = miss
				o.Scalars[label+"-savings%"] = save
			}
			b.WriteString("\nThe all-predictor split has the lowest misprediction rate but no\n")
			b.WriteString("confidence signal; splits funding a CT trade a slightly weaker\n")
			b.WriteString("predictor for recoverable mispredictions.\n")
			o.Text = b.String()
			return o, nil
		},
	})
}

func ctEntries(bits uint) int {
	if bits == 0 {
		return 0
	}
	return 1 << bits
}
