package exp

import (
	"fmt"
	"math/bits"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// Two experiments closing loops the paper leaves open:
//
//   - static-realistic: §2 admits the static curve is optimistic because
//     the profile and the evaluation use the same data. Here the profile
//     ranks static branches on a training walk and the curve is evaluated
//     on a disjoint walk of the same program.
//
//   - ablation-weighted: §5.1 observes ones counting weights old and
//     recent mispredictions equally although "recent mispredictions ...
//     correlate better". A recency-weighted ones count tests whether
//     honouring that observation closes the gap to the ideal reduction.
func init() {
	register(Experiment{
		ID:    "static-realistic",
		Title: "Static confidence with an out-of-sample profile (de-idealising §2)",
		Paper: "§2: \"the graph ... provides an optimistic estimate ... we are executing the programs with exactly the same data as for the profile\"",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "static-realistic", Title: "realistic static confidence", Scalars: map[string]float64{}}
			// The training half is the standard walk under the standard
			// predictor — exactly the cached static suite pass.
			trainSR, err := s.SuiteOne(predGshare64K, mechStatic)
			if err != nil {
				return nil, err
			}
			trainRuns := trainSR.Stats()
			// The evaluation half walks each program along a disjoint
			// dynamic path (different walk seed, same build). It is used
			// once, so it streams instead of entering the replay cache.
			var evalRuns []analysis.BucketStats
			for _, spec := range workload.Suite() {
				evalSrc, err := spec.FiniteSourceSeeded(s.Config().Branches, spec.Seed^0xE7A1_0A7E)
				if err != nil {
					return nil, err
				}
				evalRes, err := sim.Run(evalSrc, predictor.Gshare64K(), core.NewStaticProfile())
				if err != nil {
					return nil, err
				}
				evalRuns = append(evalRuns, evalRes.Buckets)
			}
			trainCS := s.Distinct(trainRuns)
			evalCS := s.Distinct(evalRuns)
			optimistic := evalCS.Curve() // eval data, eval-sorted
			order := trainCS.Curve().Keys()
			// The ordered accumulation stays on the direct path: its order
			// input is run-specific, so a cached artifact would never be
			// shared, and the build is a single pass over the composite.
			realistic := analysis.BuildCurveOrdered(evalCS.Stats(), order)
			o.Series = []analysis.Series{
				{Label: "optimistic (self-profiled)", Curve: optimistic},
				{Label: "realistic (train/test split)", Curve: realistic},
			}
			o.Scalars["optimistic@20%"] = optimistic.MispredsAt(20)
			o.Scalars["realistic@20%"] = realistic.MispredsAt(20)
			o.Scalars["optimism-gap@20%"] = optimistic.MispredsAt(20) - realistic.MispredsAt(20)
			renderFigure(o)
			o.Text += fmt.Sprintf("\noptimism gap at 20%% of branches: %.1f points\n",
				o.Scalars["optimism-gap@20%"])
			return o, nil
		},
	})

	register(Experiment{
		ID:    "ablation-weighted",
		Title: "Recency-weighted ones counting (the refinement §5.1's analysis points at)",
		Paper: "§5.1: recent CIR bits correlate better than old ones, yet ones counting weighs them equally",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "ablation-weighted", Title: "weighted ones counting", Scalars: map[string]float64{}}
			sr, err := s.SuiteOne(predGshare64K, mechOneLevel(core.IndexPCxorBHR))
			if err != nil {
				return nil, err
			}
			cs := s.Pooled(sr.Stats())
			ideal := cs.Curve()
			plain := cs.Merged("1cnt", func(b uint64) uint64 {
				return uint64(bits.OnesCount64(b))
			})
			weigher := core.WeightedOnesReducer{Width: 16}
			weighted := cs.Merged("w1cnt-w16", func(b uint64) uint64 {
				return uint64(weigher.Score(b))
			})
			o.Series = []analysis.Series{
				{Label: "ideal", Curve: ideal},
				{Label: "1Cnt", Curve: plain},
				{Label: "weighted-1Cnt", Curve: weighted},
			}
			o.Scalars["ideal@20%"] = ideal.MispredsAt(20)
			o.Scalars["plain@20%"] = plain.MispredsAt(20)
			o.Scalars["weighted@20%"] = weighted.MispredsAt(20)
			renderFigure(o)
			return o, nil
		},
	})
}
