package exp

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// TestSessionConcurrentClaimants exercises the pass cache's claim-then-run
// path under contention: many goroutines request the same (predictor,
// mechanism) pass simultaneously; exactly one must simulate it (counted via
// the constructors) while the rest block on the entry and share the result.
// Run under -race in CI.
func TestSessionConcurrentClaimants(t *testing.T) {
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	var predBuilds, mechBuilds atomic.Int64
	pred := PredSpec{Key: "gshare-64K", New: func() predictor.Predictor {
		predBuilds.Add(1)
		return predictor.Gshare64K()
	}}
	mech := MechSpec{Key: "resetting", New: func() core.Mechanism {
		mechBuilds.Add(1)
		return core.PaperResetting()
	}}

	s := NewSession(Config{Branches: 3456})
	const claimants = 8
	results := make([]sim.SuiteResult, claimants)
	errs := make([]error, claimants)
	var wg sync.WaitGroup
	for g := 0; g < claimants; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = s.SuiteOne(pred, mech)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("claimant %d: %v", g, err)
		}
	}
	for g := 1; g < claimants; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("claimant %d got a different result", g)
		}
	}

	// One pass over the suite, regardless of how many claimants raced: the
	// mechanism is constructed once (its instance is Reset and reused
	// across benchmarks), the predictor once per benchmark (one annotation
	// walk each).
	n := int64(len(workload.Suite()))
	if got := mechBuilds.Load(); got != 1 {
		t.Errorf("mechanism constructor ran %d times, want 1 (reset-and-reuse across benchmarks)", got)
	}
	if got := predBuilds.Load(); got != n {
		t.Errorf("predictor constructor ran %d times, want %d (one annotate per benchmark)", got, n)
	}
	hits, misses := s.Stats()
	if misses != 1 {
		t.Errorf("pass-cache misses = %d, want exactly 1", misses)
	}
	if hits != claimants-1 {
		t.Errorf("pass-cache hits = %d, want %d", hits, claimants-1)
	}
}

// TestAnnotatedMatchesInterleavedArtefacts pins the engine switch: a report
// artefact produced through the annotated two-stage engine must be
// byte-identical to the interleaved single-pass engine's output for the
// same configuration.
func TestAnnotatedMatchesInterleavedArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a registry slice twice")
	}
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	// baseline matters here: it sweeps every registered predictor,
	// including the target-reading BTFN and agree predictors.
	ids := []string{"fig2", "fig5", "table1", "strength", "thresholds", "baseline"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func(cfg Config) []byte {
			o, err := e.RunOnce(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			return artefactBytes(t, o)
		}
		annotated := run(Config{Branches: 30000})
		interleaved := run(Config{Branches: 30000, NoAnnotate: true})
		if !bytes.Equal(annotated, interleaved) {
			t.Errorf("%s: annotated-engine artefact differs from interleaved engine", id)
		}
	}
	if rep := sim.AnnotatedCacheReport(); rep.Hits == 0 && rep.Misses == 0 {
		t.Error("annotated engine did not touch the annotated cache")
	}
}
