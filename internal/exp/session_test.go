package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// TestSessionConcurrentClaimants exercises the pass cache's claim-then-run
// path under contention: many goroutines request the same (predictor,
// mechanism) pass simultaneously; exactly one must simulate it (counted via
// the constructors) while the rest block on the entry and share the result.
// Run under -race in CI.
func TestSessionConcurrentClaimants(t *testing.T) {
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	var predBuilds, mechBuilds atomic.Int64
	pred := PredSpec{Key: "gshare-64K", New: func() predictor.Predictor {
		predBuilds.Add(1)
		return predictor.Gshare64K()
	}}
	mech := MechSpec{Key: "resetting", New: func() core.Mechanism {
		mechBuilds.Add(1)
		return core.PaperResetting()
	}}

	s := NewSession(Config{Branches: 3456})
	const claimants = 8
	results := make([]sim.SuiteResult, claimants)
	errs := make([]error, claimants)
	var wg sync.WaitGroup
	for g := 0; g < claimants; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = s.SuiteOne(pred, mech)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("claimant %d: %v", g, err)
		}
	}
	for g := 1; g < claimants; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("claimant %d got a different result", g)
		}
	}

	// One pass over the suite, regardless of how many claimants raced: the
	// mechanism is constructed once (its instance is Reset and reused
	// across benchmarks), the predictor once per benchmark (one annotation
	// walk each).
	n := int64(len(workload.Suite()))
	if got := mechBuilds.Load(); got != 1 {
		t.Errorf("mechanism constructor ran %d times, want 1 (reset-and-reuse across benchmarks)", got)
	}
	if got := predBuilds.Load(); got != n {
		t.Errorf("predictor constructor ran %d times, want %d (one annotate per benchmark)", got, n)
	}
	hits, misses := s.Stats()
	if misses != 1 {
		t.Errorf("pass-cache misses = %d, want exactly 1", misses)
	}
	if hits != claimants-1 {
		t.Errorf("pass-cache hits = %d, want %d", hits, claimants-1)
	}
}

// TestSessionCrossRequestSingleFlight exercises the process-lifetime form
// of the pass cache: claimants arrive as distinct "requests" — separate
// goroutines fetching the session from a shared SessionPool, the resident
// daemon's shape — rather than racing inside one report run. The contract
// is unchanged: one simulation per (predictor, mechanism) key, every
// request sharing the result, and pool-wide stats counting each request's
// claim. Run under -race in CI.
func TestSessionCrossRequestSingleFlight(t *testing.T) {
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	var mechBuilds atomic.Int64
	pred := Pred(func() predictor.Predictor { return predictor.Gshare64K() })
	mech := MechSpec{Key: "resetting", New: func() core.Mechanism {
		mechBuilds.Add(1)
		return core.PaperResetting()
	}}

	pool := NewSessionPool(4, 0)
	cfg := Config{Branches: 3456}
	const requests = 6
	results := make([]sim.SuiteResult, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each request resolves its own session from the pool, as the
			// daemon's report handler does.
			s := pool.Get(cfg)
			results[g], errs[g] = s.SuiteOne(pred, mech)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", g, err)
		}
	}
	for g := 1; g < requests; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("request %d got a different result", g)
		}
	}
	if got := mechBuilds.Load(); got != 1 {
		t.Errorf("mechanism constructor ran %d times across requests, want 1", got)
	}
	if pool.Len() != 1 {
		t.Errorf("pool holds %d sessions for one config, want 1", pool.Len())
	}
	hits, misses, _ := pool.Stats()
	if misses != 1 || hits != requests-1 {
		t.Errorf("pool stats = %d hits, %d misses; want %d, 1", hits, misses, requests-1)
	}

	// A distinct config is a distinct session — results may legitimately
	// differ, so passes must not be shared across configs.
	other := pool.Get(Config{Branches: 1234})
	if other == pool.Get(cfg) {
		t.Fatal("distinct configs shared a session")
	}
}

// TestSessionErroredClaimantMidFlight pins the resident-process error
// contract: claimants parked on a pass whose owner fails all observe the
// error, but the failure is not negatively cached — the next claimant
// re-owns the key and a clean run succeeds. The owner's failure is staged
// through the pass cache directly (the engine has no injectable failure
// path), which is exactly the layer the contract lives in.
func TestSessionErroredClaimantMidFlight(t *testing.T) {
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	pred := Pred(func() predictor.Predictor { return predictor.Gshare64K() })
	mech := Mech(func() core.Mechanism { return core.PaperResetting() })
	s := NewSession(Config{Branches: 3456})

	// Become the mid-flight owner of the pass.
	key := passKey(pred.Key + "\x1f" + mech.Key)
	e, owner := s.passes.Claim(key)
	if !owner {
		t.Fatal("test could not claim the fresh pass")
	}

	// Waiters arrive while the owner is in flight.
	const waiters = 4
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[g] = s.SuiteOne(pred, mech)
		}()
	}
	// Every waiter registers a pass-cache hit when it parks on the
	// in-flight entry; finish only once all of them are parked, so none
	// arrives after the errored entry is dropped and accidentally owns a
	// clean rebuild.
	for hits, _ := s.Stats(); hits < waiters; hits, _ = s.Stats() {
		runtime.Gosched()
	}
	// The owner errors mid-flight.
	wantErr := fmt.Errorf("injected mid-flight failure")
	e.Err = wantErr
	s.passes.Finish(e, 0)
	wg.Wait()
	for g, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "injected mid-flight failure") {
			t.Fatalf("waiter %d: error = %v, want the owner's failure", g, err)
		}
	}

	// The error must not be pinned: a later claimant re-owns the key and
	// the clean run succeeds.
	res, err := s.SuiteOne(pred, mech)
	if err != nil {
		t.Fatalf("retry after mid-flight failure: %v", err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("retry produced an empty result")
	}
}

// TestSessionPassEviction pins the memory-pressure hook: under a byte
// bound the pass cache evicts completed passes LRU-first, and an evicted
// pass is re-simulated (a miss) on the next claim rather than served.
func TestSessionPassEviction(t *testing.T) {
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	pred := Pred(func() predictor.Predictor { return predictor.Gshare64K() })
	mech := Mech(func() core.Mechanism { return core.PaperResetting() })
	s := NewSession(Config{Branches: 3456})
	s.SetPassBound(1) // every completed pass exceeds the bound

	if _, err := s.SuiteOne(pred, mech); err != nil {
		t.Fatal(err)
	}
	if resident, evictions := s.PassUsage(); evictions == 0 || resident > 1 {
		t.Fatalf("bound ignored: resident=%d evictions=%d", resident, evictions)
	}
	if _, err := s.SuiteOne(pred, mech); err != nil {
		t.Fatal(err)
	}
	if _, misses := s.Stats(); misses != 2 {
		t.Fatalf("evicted pass served from cache: misses=%d, want 2", misses)
	}
}

// TestSessionPoolEviction pins the pool bound: beyond max sessions the
// least-recently-used config is retired, its stats fold into the pool
// totals, and Trim releases everything.
func TestSessionPoolEviction(t *testing.T) {
	pool := NewSessionPool(2, 0)
	a := pool.Get(Config{Branches: 100})
	_ = pool.Get(Config{Branches: 200})
	_ = pool.Get(Config{Branches: 300}) // evicts Branches:100
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d sessions, want 2", pool.Len())
	}
	if _, _, evictions := pool.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if pool.Get(Config{Branches: 100}) == a {
		t.Fatal("evicted session resurrected instead of rebuilt")
	}
	pool.Trim()
	if pool.Len() != 0 {
		t.Fatalf("Trim left %d sessions", pool.Len())
	}
}

// TestAnnotatedMatchesInterleavedArtefacts pins the engine switch: a report
// artefact produced through the annotated two-stage engine must be
// byte-identical to the interleaved single-pass engine's output for the
// same configuration.
func TestAnnotatedMatchesInterleavedArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a registry slice twice")
	}
	sim.ResetAnnotatedCache()
	defer sim.ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()

	// baseline matters here: it sweeps every registered predictor,
	// including the target-reading BTFN and agree predictors.
	ids := []string{"fig2", "fig5", "table1", "strength", "thresholds", "baseline"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func(cfg Config) []byte {
			o, err := e.RunOnce(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			return artefactBytes(t, o)
		}
		annotated := run(Config{Branches: 30000})
		interleaved := run(Config{Branches: 30000, NoAnnotate: true})
		if !bytes.Equal(annotated, interleaved) {
			t.Errorf("%s: annotated-engine artefact differs from interleaved engine", id)
		}
	}
	if rep := sim.AnnotatedCacheReport(); rep.Hits == 0 && rep.Misses == 0 {
		t.Error("annotated engine did not touch the annotated cache")
	}
}
