package exp

import (
	"strings"
	"testing"
)

// fastCfg keeps experiment tests quick; full-length runs happen in the
// benchmark harness and cmd/paperrepro.
var fastCfg = Config{Branches: 60000}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig5", "fig6", "fig7", "fig8", "table1", "fig9", "fig10", "fig11",
		"baseline", "thresholds", "apps",
		"multilevel", "ctxswitch", "ctxswitch-mix", "gating", "perbench", "pipeline", "dualpath-ipc", "strength", "replication",
		"ablation-index", "ablation-cirwidth", "ablation-l2index", "ablation-countermax", "ablation-costsplit",
		"static-realistic", "ablation-weighted",
	}
	got := map[string]bool{}
	for _, id := range IDs() {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("registry missing %q (have %v)", id, IDs())
		}
	}
	if len(All()) != len(IDs()) {
		t.Fatal("All/IDs length mismatch")
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if e.Title == "" || e.Paper == "" {
		t.Fatal("experiment missing metadata")
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id found")
	}
}

func TestFig2Static(t *testing.T) {
	e, _ := ByID("fig2")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Series) != 1 {
		t.Fatalf("%d series", len(o.Series))
	}
	at20 := o.Scalars["mispreds@20%"]
	// The static method concentrates mispredictions well above uniform but
	// below the dynamic methods (paper: ~63%).
	if at20 < 35 || at20 > 90 {
		t.Fatalf("static @20%% = %.1f, outside sanity band", at20)
	}
	if !strings.Contains(o.Text, "static") {
		t.Fatal("text missing series label")
	}
}

func TestFig5OneLevelOrdering(t *testing.T) {
	e, _ := ByID("fig5")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	pc := o.Scalars["PC@20%"]
	bhr := o.Scalars["BHR@20%"]
	xor := o.Scalars["BHRxorPC@20%"]
	// Paper ordering at 20%: PCxorBHR > BHR > PC (89/85/72).
	if !(xor > bhr && bhr > pc) {
		t.Fatalf("ordering violated: xor %.1f bhr %.1f pc %.1f", xor, bhr, pc)
	}
	if xor < 70 {
		t.Fatalf("best one-level @20%% = %.1f, far below paper's 89", xor)
	}
	// All dynamic methods beat static (paper's central claim).
	static := o.Series[0].Curve.MispredsAt(20)
	if xor <= static || bhr <= static {
		t.Fatalf("dynamic methods failed to beat static (%.1f)", static)
	}
	// Zero bucket holds most branches and few mispredictions.
	if zb := o.Scalars["zeroBucketBranches%"]; zb < 50 {
		t.Fatalf("zero bucket only %.1f%% of branches (paper ~80%%)", zb)
	}
	if zm := o.Scalars["zeroBucketMispreds%"]; zm > 35 {
		t.Fatalf("zero bucket holds %.1f%% of mispredictions (paper 12-15%%)", zm)
	}
}

func TestFig7OneLevelMatchesTwoLevel(t *testing.T) {
	e, _ := ByID("fig7")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	one, two, static := o.Scalars["1lev@20%"], o.Scalars["2lev@20%"], o.Scalars["static@20%"]
	// Paper: very similar performance; two-level not clearly better.
	if two > one+6 {
		t.Fatalf("two-level (%.1f) much better than one-level (%.1f) — contradicts paper", two, one)
	}
	if one <= static {
		t.Fatalf("one-level (%.1f) not better than static (%.1f)", one, static)
	}
}

func TestFig8ReductionOrdering(t *testing.T) {
	e, _ := ByID("fig8")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal := o.Scalars["ideal@20%"]
	reset := o.Scalars["Reset@20%"]
	sat := o.Scalars["Sat@20%"]
	// Resetting tracks ideal closely; saturating caps out earlier because
	// its max bucket swallows mispredictions (paper: cannot partition past
	// ~60% coverage).
	if ideal-reset > 12 {
		t.Fatalf("resetting (%.1f) far from ideal (%.1f)", reset, ideal)
	}
	if sat > reset {
		t.Fatalf("saturating (%.1f) beat resetting (%.1f) at 20%% — contradicts paper", sat, reset)
	}
	if len(o.Series) != 4 {
		t.Fatalf("%d series", len(o.Series))
	}
}

func TestTable1Shape(t *testing.T) {
	e, _ := ByID("table1")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rows) != 17 {
		t.Fatalf("%d rows, want 17", len(o.Rows))
	}
	// Misprediction rate decreases with counter value (monotone trend:
	// compare endpoints and mid).
	if !(o.Rows[0].MissRate > o.Rows[8].MissRate && o.Rows[8].MissRate > o.Rows[16].MissRate) {
		t.Fatalf("rates not decreasing: %.3f %.3f %.3f",
			o.Rows[0].MissRate, o.Rows[8].MissRate, o.Rows[16].MissRate)
	}
	// Count 0 concentrates a large share of mispredictions in few refs.
	if o.Rows[0].CumMissesPct < 20 || o.Rows[0].CumRefsPct > 15 {
		t.Fatalf("count-0 row %.1f%% mispreds in %.1f%% refs (paper 41.7%% in 4.28%%)",
			o.Rows[0].CumMissesPct, o.Rows[0].CumRefsPct)
	}
	// Count 16 is the zero-bucket analogue: most branches live there.
	last := o.Rows[16]
	if last.RefsPct < 50 {
		t.Fatalf("saturated bucket holds only %.1f%% of refs", last.RefsPct)
	}
	if last.CumRefsPct < 99.999 || last.CumMissesPct < 99.999 {
		t.Fatalf("cumulative end %.2f/%.2f", last.CumRefsPct, last.CumMissesPct)
	}
}

func TestFig9Extremes(t *testing.T) {
	e, _ := ByID("fig9")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Scalars["jpeg_play-missRate"] >= o.Scalars["real_gcc-missRate"] {
		t.Fatal("jpeg_play not easier than real_gcc")
	}
	if len(o.Series) != 2 {
		t.Fatalf("%d series", len(o.Series))
	}
}

func TestFig10SmallTablesDegradeGracefully(t *testing.T) {
	e, _ := ByID("fig10")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	big := o.Scalars["4096@20%"]
	small := o.Scalars["128@20%"]
	if big < 55 {
		t.Fatalf("4096-entry CT @20%% = %.1f, paper ~75", big)
	}
	if small >= big {
		t.Fatalf("128-entry (%.1f) not worse than 4096-entry (%.1f)", small, big)
	}
}

func TestFig11InitPolicies(t *testing.T) {
	e, _ := ByID("fig11")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	ones, zeros := o.Scalars["one@20%"], o.Scalars["zero@20%"]
	last, random := o.Scalars["lastbit@20%"], o.Scalars["random@20%"]
	if zeros > ones {
		t.Fatalf("zeros (%.1f) beat ones (%.1f) — contradicts paper", zeros, ones)
	}
	// Nonzero policies perform similarly (within a few points).
	if diff := ones - last; diff > 6 || diff < -6 {
		t.Fatalf("ones (%.1f) vs lastbit (%.1f) differ too much", ones, last)
	}
	if diff := ones - random; diff > 6 || diff < -6 {
		t.Fatalf("ones (%.1f) vs random (%.1f) differ too much", ones, random)
	}
}

func TestAblationIndexConfirmsPaperClaims(t *testing.T) {
	e, _ := ByID("ablation-index")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	xor := o.Scalars["BHRxorPC@20%"]
	gcir := o.Scalars["GCIR@20%"]
	if gcir >= xor {
		t.Fatalf("GCIR (%.1f) not worse than BHRxorPC (%.1f) — paper dismissed it", gcir, xor)
	}
	concat := o.Scalars["PCcatBHR@20%"]
	if concat > xor+3 {
		t.Fatalf("concatenation (%.1f) clearly beat xor (%.1f) — contradicts paper", concat, xor)
	}
}

func TestThresholdsExperiment(t *testing.T) {
	e, _ := ByID("thresholds")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage grows with threshold.
	if o.Scalars["thr16-coverage%"] <= o.Scalars["thr1-coverage%"] {
		t.Fatal("coverage not increasing in threshold")
	}
	if o.Scalars["thr16-low%"] <= o.Scalars["thr1-low%"] {
		t.Fatal("low-set size not increasing in threshold")
	}
}

func TestMultilevelExperiment(t *testing.T) {
	e, _ := ByID("multilevel")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Enrichment must decrease with level: level 0 concentrates misses.
	l0 := o.Scalars["level0-mispreds%"] / o.Scalars["level0-branches%"]
	l3 := o.Scalars["level3-mispreds%"] / o.Scalars["level3-branches%"]
	if l0 <= 1 || l3 >= 1 {
		t.Fatalf("enrichment not ordered: level0 %.2fx level3 %.2fx", l0, l3)
	}
}

func TestCtxSwitchExperiment(t *testing.T) {
	e, _ := ByID("ctxswitch")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	keep := o.Scalars["keep@20%"]
	markOldest := o.Scalars["mark-oldest@20%"]
	zeros := o.Scalars["flush-zeros@20%"]
	// §5.4 conjecture: mark-oldest performs like keeping the tables.
	if diff := keep - markOldest; diff > 4 || diff < -4 {
		t.Fatalf("mark-oldest (%.1f) far from keep (%.1f)", markOldest, keep)
	}
	if zeros >= keep {
		t.Fatalf("flush-to-zeros (%.1f) not worse than keep (%.1f)", zeros, keep)
	}
}

func TestGatingExperiment(t *testing.T) {
	e, _ := ByID("gating")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Scalars["thr1-wasted%"] >= o.Scalars["throff-wasted%"] {
		t.Fatal("aggressive gating did not reduce wasted work")
	}
	if o.Scalars["throff-stalled%"] != 0 {
		t.Fatal("ungated baseline stalled")
	}
}

func TestPipelineExperiment(t *testing.T) {
	e, _ := ByID("pipeline")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle bounds every policy: no higher waste than ungated, no
	// lower IPC than any real-estimator gate.
	if o.Scalars["oracle-gate1-waste%"] >= o.Scalars["ungated-waste%"] {
		t.Fatal("oracle gating failed to cut waste")
	}
	if o.Scalars["oracle-gate1-ipc"] < o.Scalars["est2-gate1-ipc"] {
		t.Fatal("oracle IPC below real-estimator IPC")
	}
	if o.Scalars["est2-gate1-waste%"] >= o.Scalars["est8-gate4-waste%"] {
		t.Fatal("aggressive gating did not cut waste further")
	}
}

func TestPerbenchExperiment(t *testing.T) {
	e, _ := ByID("perbench")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Series) != 9 {
		t.Fatalf("%d series", len(o.Series))
	}
	if o.Scalars["spread@20%"] <= 0 {
		t.Fatal("no per-benchmark spread measured")
	}
}

func TestCtxSwitchMixExperiment(t *testing.T) {
	e, _ := ByID("ctxswitch-mix")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	solo := o.Scalars["solo@20%"]
	q1k := o.Scalars["mix-q1000@20%"]
	if q1k >= solo {
		t.Fatalf("fine-grained mixing (%.1f) not worse than solo (%.1f)", q1k, solo)
	}
	// Finer quanta pollute the shared tables more (misprediction rate up).
	if o.Scalars["mix-q1000-missRate%"] <= o.Scalars["mix-q100000-missRate%"] {
		t.Fatal("finer time slicing did not raise the misprediction rate")
	}
}

func TestStrengthExperiment(t *testing.T) {
	e, _ := ByID("strength")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The identity: 2-bit counter weakness marks exactly the entries whose
	// last access mispredicted, i.e. resetting counter == 0 at congruent
	// geometry. The two coverages must agree to numerical precision.
	diff := o.Scalars["strength-coverage%"] - o.Scalars["resetting-coverage%"]
	if diff > 0.01 || diff < -0.01 {
		t.Fatalf("identity violated: strength %.3f vs resetting %.3f",
			o.Scalars["strength-coverage%"], o.Scalars["resetting-coverage%"])
	}
	// The dedicated table's value is the operating range beyond the free
	// signal's single point.
	if o.Scalars["resetting@20%"] <= o.Scalars["strength-coverage%"] {
		t.Fatal("resetting table at 20% no better than the free strength point")
	}
}

func TestReplicationExperiment(t *testing.T) {
	e, _ := ByID("replication")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Conclusions must be seed-robust: coverage@20 varies by a few points,
	// not tens, and stays far above the static method's ~60-70%.
	if o.Scalars["ideal@20%-spread"] > 10 {
		t.Fatalf("coverage spread %.1f points across seeds — conclusions fragile", o.Scalars["ideal@20%-spread"])
	}
	if o.Scalars["ideal@20%-min"] < 72 {
		t.Fatalf("worst-seed coverage %.1f — below the static baseline region", o.Scalars["ideal@20%-min"])
	}
}

func TestCostSplitExperiment(t *testing.T) {
	e, _ := ByID("ablation-costsplit")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// All-predictor split: best raw accuracy, zero recoverable penalty.
	if o.Scalars["2^16+2^0-savings%"] != 0 {
		t.Fatal("no-CT split claims dual-path savings")
	}
	if o.Scalars["2^16+2^0-miss%"] >= o.Scalars["2^13+2^15-miss%"] {
		t.Fatal("bigger predictor did not predict better")
	}
	// Funding the CT buys recoverable penalty.
	if o.Scalars["2^13+2^15-savings%"] <= o.Scalars["2^15+2^13-savings%"] {
		t.Fatal("bigger CT did not buy more recoverable penalty")
	}
}

func TestStaticRealisticExperiment(t *testing.T) {
	e, _ := ByID("static-realistic")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-sample profiling cannot beat self-profiling; the gap exists
	// but stays modest (behaviour classes are stationary).
	gap := o.Scalars["optimism-gap@20%"]
	if gap < 0 {
		t.Fatalf("realistic static beat optimistic static by %.1f points", -gap)
	}
	if gap > 25 {
		t.Fatalf("optimism gap %.1f points — profile transfers worse than plausible", gap)
	}
}

func TestWeightedOnesExperiment(t *testing.T) {
	e, _ := ByID("ablation-weighted")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal, plain, weighted := o.Scalars["ideal@20%"], o.Scalars["plain@20%"], o.Scalars["weighted@20%"]
	// §5.1's observation quantified: recency weighting improves on plain
	// ones counting without exceeding the ideal reduction.
	if weighted <= plain {
		t.Fatalf("weighted (%.1f) not above plain ones count (%.1f)", weighted, plain)
	}
	if weighted > ideal+0.5 {
		t.Fatalf("weighted (%.1f) exceeded ideal (%.1f)", weighted, ideal)
	}
}

func TestDualPathIPCExperiment(t *testing.T) {
	e, _ := ByID("dualpath-ipc")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	base := o.Scalars["no-dual-path-ipc"]
	est := o.Scalars["est4-forks-ipc"]
	oracle := o.Scalars["oracle-forks-ipc"]
	// The §1/§6 claim in time: selective dual-path execution recovers
	// cycles, bounded above by the oracle.
	if est <= base {
		t.Fatalf("dual-path IPC %.3f not above baseline %.3f", est, base)
	}
	if oracle < est {
		t.Fatalf("oracle IPC %.3f below real estimator %.3f", oracle, est)
	}
	if o.Scalars["est4-forks-covered%"] <= 0 {
		t.Fatal("no coverage recorded")
	}
}
