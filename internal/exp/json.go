package exp

import (
	"encoding/json"
	"io"

	"branchconf/internal/analysis"
)

// JSON serialisation of experiment outputs, so downstream tooling (plot
// scripts, regression dashboards) can consume regenerated artefacts
// without parsing the human-readable text.

// jsonPoint is one curve point in the wire format.
type jsonPoint struct {
	Bucket    uint64  `json:"bucket"`
	Run       int     `json:"run,omitempty"`
	Rate      float64 `json:"rate"`
	CumEvents float64 `json:"cumBranchesPct"`
	CumMisses float64 `json:"cumMispredsPct"`
}

// jsonSeries is one labelled curve.
type jsonSeries struct {
	Label  string      `json:"label"`
	Points []jsonPoint `json:"points"`
}

// jsonRow mirrors analysis.TableRow.
type jsonRow struct {
	Count        int     `json:"count"`
	MissRate     float64 `json:"missRate"`
	RefsPct      float64 `json:"refsPct"`
	MissesPct    float64 `json:"missesPct"`
	CumRefsPct   float64 `json:"cumRefsPct"`
	CumMissesPct float64 `json:"cumMissesPct"`
}

// jsonOutput is the wire form of an Output.
type jsonOutput struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Series  []jsonSeries       `json:"series,omitempty"`
	Rows    []jsonRow          `json:"rows,omitempty"`
	Scalars map[string]float64 `json:"scalars,omitempty"`
}

// WriteJSON encodes the output. Curves are thinned to points advancing
// either cumulative axis by at least thin percentage points (0 keeps every
// point).
func (o *Output) WriteJSON(w io.Writer, thin float64) error {
	jo := jsonOutput{ID: o.ID, Title: o.Title, Scalars: o.Scalars}
	for _, s := range o.Series {
		c := s.Curve
		if thin > 0 {
			c = c.Thin(thin)
		}
		js := jsonSeries{Label: s.Label, Points: make([]jsonPoint, 0, len(c))}
		for _, p := range c {
			js.Points = append(js.Points, jsonPoint{
				Bucket:    p.Key.Bucket,
				Run:       p.Key.Run,
				Rate:      p.Rate,
				CumEvents: p.CumEventsPct,
				CumMisses: p.CumMissesPct,
			})
		}
		jo.Series = append(jo.Series, js)
	}
	for _, r := range o.Rows {
		jo.Rows = append(jo.Rows, jsonRow(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}

// DecodeJSON parses an encoded output back into curves and rows — used by
// tests and by tooling that post-processes saved artefacts. Scalars and
// geometry round-trip; bucket statistics do (rate and cumulative axes),
// while per-point raw tallies are not part of the wire format.
func DecodeJSON(r io.Reader) (*Output, error) {
	var jo jsonOutput
	if err := json.NewDecoder(r).Decode(&jo); err != nil {
		return nil, err
	}
	out := &Output{ID: jo.ID, Title: jo.Title, Scalars: jo.Scalars}
	for _, js := range jo.Series {
		c := make(analysis.Curve, 0, len(js.Points))
		for _, p := range js.Points {
			c = append(c, analysis.Point{
				Key:          analysis.Key{Run: p.Run, Bucket: p.Bucket},
				Rate:         p.Rate,
				CumEventsPct: p.CumEvents,
				CumMissesPct: p.CumMisses,
			})
		}
		out.Series = append(out.Series, analysis.Series{Label: js.Label, Curve: c})
	}
	for _, r := range jo.Rows {
		out.Rows = append(out.Rows, analysis.TableRow(r))
	}
	return out, nil
}
