package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// The long-horizon experiment measures how confidence-table warmup and
// aliasing evolve with trace length: the paper's tables are trained on 1M
// branches per benchmark, but a CIR table's hot set keeps growing with the
// horizon, so coverage at a fixed branch fraction drifts as cold-start
// effects wash out and destructive aliasing accumulates in small tables.
// It sweeps the hardest benchmark (real_gcc, the largest static branch
// population) at three horizons — 1/16, 1/4 and all of the session budget —
// and reports each mechanism's mispredict coverage at 20% of dynamic
// branches plus the predictor's composite miss rate per horizon.
//
// The experiment is OptIn: its interesting budgets (10^8 branches and up,
// under -segment-branches) dwarf a default report run, so it only executes
// when -only names it. At any budget it runs bounded-memory when the
// session streams (Config.SegmentBranches), making it the natural driver
// for memory-ceiling smoke checks.
func init() {
	register(Experiment{
		ID:    "longhorizon",
		Title: "Confidence-table warmup and aliasing vs trace length (real_gcc)",
		Paper: "not in the paper; extends Fig. 5/9 along the trace-length axis",
		OptIn: true,
		Run:   runLongHorizon,
	})
}

func runLongHorizon(s *Session) (*Output, error) {
	spec, err := workload.ByName("real_gcc")
	if err != nil {
		return nil, err
	}
	budget := s.Branches()
	horizons := []uint64{budget / 16, budget / 4, budget}
	for i := range horizons {
		if horizons[i] == 0 {
			horizons[i] = 1
		}
	}
	mechs := []struct {
		label string
		spec  MechSpec
	}{
		{"onelevel-pc^bhr", mechOneLevel(core.IndexPCxorBHR)},
		{"onelevel-1K", Mech(func() core.Mechanism {
			return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, TableBits: 10})
		})},
		{"resetting", mechResetting},
	}

	cfg := s.Config()
	o := &Output{ID: "longhorizon", Title: "warmup and aliasing vs trace length", Scalars: map[string]float64{}}
	var b strings.Builder
	b.WriteString("horizon(branches)  miss%   " )
	for _, m := range mechs {
		fmt.Fprintf(&b, "%18s", m.label+"@20%")
	}
	b.WriteString("\n")
	for _, h := range horizons {
		// Per-horizon budgets differ from the session's, so these passes
		// bypass the session pass cache and hit the sim engine directly —
		// streaming when the session streams. Nil Source/Buffer pick the sim
		// defaults: generator sources under streaming, the process-wide
		// materialize cache otherwise.
		scfg := sim.SuiteConfig{
			Branches:        h,
			Specs:           []workload.Spec{spec},
			NoTally:         cfg.NoTally,
			SegmentBranches: cfg.SegmentBranches,
		}
		newMechs := make([]func() core.Mechanism, len(mechs))
		for i, m := range mechs {
			newMechs[i] = m.spec.New
		}
		var rs []sim.SuiteResult
		var err error
		if cfg.NoAnnotate {
			rs, err = sim.RunSuiteBatch(scfg, predGshare64K.New, newMechs)
		} else {
			rs, err = sim.RunSuiteAnnotated(scfg, predGshare64K.Key, predGshare64K.New, newMechs)
		}
		if err != nil {
			return nil, err
		}
		miss := 100 * rs[0].CompositeMissRate()
		fmt.Fprintf(&b, "%17d  %5.2f  ", h, miss)
		o.Scalars[fmt.Sprintf("miss%%@%d", h)] = miss
		for i, m := range mechs {
			var curve analysis.Curve
			if cfg.NoCurveArtifact {
				curve = analysis.BuildCurve(analysis.CompositePooled(rs[i].Stats()))
			} else {
				curve = s.Pooled(rs[i].Stats()).Curve()
			}
			cov := curve.MispredsAt(20)
			fmt.Fprintf(&b, "%17.2f%%", cov)
			o.Scalars[fmt.Sprintf("%s@20%%@%d", m.label, h)] = cov
		}
		b.WriteString("\n")
	}
	o.Text = b.String()
	return o, nil
}
