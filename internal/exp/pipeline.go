package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/core"
	"branchconf/internal/pipeline"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// oracleSignal is a perfect confidence estimator: low confidence exactly
// when the prediction will be wrong. It bounds what any real estimator
// can achieve for pipeline gating.
type oracleSignal struct {
	pred predictor.Predictor
}

// Confident peeks at the predictor (Predict is side-effect free).
func (o oracleSignal) Confident(r trace.Record) bool { return o.pred.Predict(r) == r.Taken }

// Update is a no-op: oracles need no training.
func (o oracleSignal) Update(trace.Record, bool) {}

// packPipeStats flattens a pipeline run's counters for the model tier; the
// unpacker must mirror the order exactly.
func packPipeStats(st pipeline.Stats) []uint64 {
	return []uint64{st.Cycles, st.Retired, st.WrongPath, st.GateStalls, st.Branches, st.Misses}
}

const pipeStatsLen = 6

func unpackPipeStats(c []uint64) pipeline.Stats {
	return pipeline.Stats{Cycles: c[0], Retired: c[1], WrongPath: c[2], GateStalls: c[3], Branches: c[4], Misses: c[5]}
}

// packDualStats flattens a dual-path pipeline run's counters.
func packDualStats(st pipeline.DualPathStats) []uint64 {
	return append(packPipeStats(st.Stats), st.Forks, st.CoveredMiss, st.ForkSlots)
}

const dualStatsLen = pipeStatsLen + 3

func unpackDualStats(c []uint64) pipeline.DualPathStats {
	return pipeline.DualPathStats{Stats: unpackPipeStats(c), Forks: c[6], CoveredMiss: c[7], ForkSlots: c[8]}
}

func init() {
	register(Experiment{
		ID:    "pipeline",
		Title: "Cycle-level pipeline: IPC and wrong-path work under confidence-gated fetch",
		Paper: "IPC framing of the gating trade-off follow-on work quantified; oracle row bounds any estimator",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "pipeline", Title: "pipeline gating at cycle level", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("policy          IPC    waste%fetch   gate-stall%cycles\n")
			type policy struct {
				label  string
				gate   int
				est    uint64 // resetting-counter threshold; 0 with oracle
				oracle bool
			}
			policies := []policy{
				{"ungated", 0, 0, false},
				{"est8-gate4", 4, 8, false},
				{"est4-gate2", 2, 4, false},
				{"est2-gate1", 1, 2, false},
				{"oracle-gate1", 1, 0, true},
			}
			mach := pipeline.Default96()
			for _, pol := range policies {
				var ipc, waste, stall float64
				n := 0
				estLabel := "none"
				if pol.oracle {
					estLabel = "oracle"
				} else if pol.gate > 0 {
					estLabel = fmt.Sprintf("paper%d", pol.est)
				}
				m := mach
				m.GateThreshold = pol.gate
				params := fmt.Sprintf("pred=gshare4k|est=%s|fw=%d|depth=%d|gate=%d", estLabel, m.FetchWidth, m.Depth, m.GateThreshold)
				for _, spec := range workload.Suite() {
					counts, err := s.modelCounts(modelKey("pipeline", spec.Name, s.Branches(), params), pipeStatsLen, func() ([]uint64, error) {
						src, err := s.Source(spec)
						if err != nil {
							return nil, err
						}
						pred := predictor.Gshare4K()
						var est pipeline.ConfidenceSignal
						if pol.oracle {
							est = oracleSignal{pred: pred}
						} else if pol.gate > 0 {
							est = core.PaperEstimator(pol.est)
						}
						st, err := pipeline.Run(src, pred, est, m)
						if err != nil {
							return nil, err
						}
						return packPipeStats(st), nil
					})
					if err != nil {
						return nil, err
					}
					st := unpackPipeStats(counts)
					ipc += st.IPC()
					waste += st.WasteFrac()
					stall += float64(st.GateStalls) / float64(st.Cycles*uint64(m.FetchWidth))
					n++
				}
				ipc, waste, stall = ipc/float64(n), waste/float64(n), stall/float64(n)
				fmt.Fprintf(&b, "%-14s %5.2f   %11.2f   %17.2f\n", pol.label, ipc, 100*waste, 100*stall)
				o.Scalars[pol.label+"-ipc"] = ipc
				o.Scalars[pol.label+"-waste%"] = 100 * waste
			}
			o.Text = b.String()
			return o, nil
		},
	})

	register(Experiment{
		ID:    "dualpath-ipc",
		Title: "Cycle-level selective dual-path execution: IPC vs baseline (application 1 in time)",
		Paper: "§1/§6: fork the non-predicted path on low confidence; coverage should convert into recovered cycles",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "dualpath-ipc", Title: "dual-path at cycle level", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("policy            IPC    covered%misses   fork%slots\n")
			type policy struct {
				label  string
				est    uint64
				oracle bool
				off    bool
			}
			policies := []policy{
				{label: "no-dual-path", off: true},
				{label: "est4-forks", est: 4},
				{label: "est8-forks", est: 8},
				{label: "oracle-forks", oracle: true},
			}
			mach := pipeline.DualPathConfig{FetchWidth: 4, Depth: 12, ForkWidth: 1}
			for _, pol := range policies {
				var ipc, covered, forkSlots float64
				n := 0
				estLabel := "none"
				if pol.oracle {
					estLabel = "oracle"
				} else if !pol.off {
					estLabel = fmt.Sprintf("paper%d", pol.est)
				}
				for _, spec := range workload.Suite() {
					if pol.off {
						params := fmt.Sprintf("pred=gshare4k|est=none|fw=%d|depth=%d|gate=0", mach.FetchWidth, mach.Depth)
						counts, err := s.modelCounts(modelKey("pipeline", spec.Name, s.Branches(), params), pipeStatsLen, func() ([]uint64, error) {
							src, err := s.Source(spec)
							if err != nil {
								return nil, err
							}
							st, err := pipeline.Run(src, predictor.Gshare4K(), nil, pipeline.Config{FetchWidth: mach.FetchWidth, Depth: mach.Depth})
							if err != nil {
								return nil, err
							}
							return packPipeStats(st), nil
						})
						if err != nil {
							return nil, err
						}
						ipc += unpackPipeStats(counts).IPC()
						n++
						continue
					}
					params := fmt.Sprintf("pred=gshare4k|est=%s|fw=%d|depth=%d|forkw=%d", estLabel, mach.FetchWidth, mach.Depth, mach.ForkWidth)
					counts, err := s.modelCounts(modelKey("pipedual", spec.Name, s.Branches(), params), dualStatsLen, func() ([]uint64, error) {
						src, err := s.Source(spec)
						if err != nil {
							return nil, err
						}
						pred := predictor.Gshare4K()
						var est pipeline.ConfidenceSignal
						if pol.oracle {
							est = oracleSignal{pred: pred}
						} else {
							est = core.PaperEstimator(pol.est)
						}
						st, err := pipeline.RunDualPath(src, pred, est, mach)
						if err != nil {
							return nil, err
						}
						return packDualStats(st), nil
					})
					if err != nil {
						return nil, err
					}
					st := unpackDualStats(counts)
					ipc += st.IPC()
					if st.Misses > 0 {
						covered += float64(st.CoveredMiss) / float64(st.Misses)
					}
					forkSlots += float64(st.ForkSlots) / float64(st.Cycles*uint64(mach.FetchWidth))
					n++
				}
				ipc, covered, forkSlots = ipc/float64(n), covered/float64(n), forkSlots/float64(n)
				fmt.Fprintf(&b, "%-15s %5.2f   %14.1f   %10.1f\n", pol.label, ipc, 100*covered, 100*forkSlots)
				o.Scalars[pol.label+"-ipc"] = ipc
				o.Scalars[pol.label+"-covered%"] = 100 * covered
			}
			o.Text = b.String()
			return o, nil
		},
	})
}
