package exp

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/pprof"
	"sync/atomic"

	"branchconf/internal/artifact"
	"branchconf/internal/memo"
)

// The model tier: the cycle-driven application models (internal/pipeline's
// gated fetch and dual-path machines, internal/apps' dual-path, SMT, hybrid,
// reverser and gating studies) are pure functions of a materialized trace
// and a small configuration, and their outputs are flat vectors of event
// counts. On a warm run they are the largest remaining cost — no stage-0..2
// artifact can skip a cycle model — so their count vectors memoize and
// persist exactly like curves: a process-wide byteLRU in front of a
// KindModelStats disk artifact, keyed by everything the counts are a pure
// function of. Every derived figure (IPC, waste, coverage, efficiency) is
// recomputed from the counts, so a served vector renders byte-identically
// to a live model run.

// modelVersion versions the cycle models' behaviour in every model-tier
// key. Bump it whenever any model in internal/pipeline or internal/apps
// changes semantics — the key carries no content hash of the model code, so
// this constant is the only invalidation handle.
const modelVersion = 1

// modelCache is the process-wide model-stats memo. Entries are a few
// hundred bytes each; the bound exists for symmetry with the other tiers
// and follows the annotated budget unless overridden.
var modelCache memo.ByteLRU

var modelHits, modelMisses atomic.Uint64

var modelBoundOverridden atomic.Bool

// SetModelCacheBound bounds the resident payload bytes of the model cache,
// overriding the default of following the annotated cache's bound. 0
// removes the bound.
func SetModelCacheBound(bytes uint64) {
	modelBoundOverridden.Store(true)
	modelCache.SetBound(bytes)
}

// SetModelCacheDefaultBound points the model cache at the shared
// -annotate-cache-mb budget figure; an explicit SetModelCacheBound wins.
func SetModelCacheDefaultBound(bytes uint64) {
	if !modelBoundOverridden.Load() {
		modelCache.SetBound(bytes)
	}
}

// ModelCacheReport returns the model cache's observability quad.
func ModelCacheReport() artifact.TierStats {
	r, e := modelCache.Usage()
	return artifact.TierStats{Hits: modelHits.Load(), Misses: modelMisses.Load(), Evictions: e, ResidentBytes: r}
}

// ResetModelCache drops every cached model result and zeroes the counters.
func ResetModelCache() {
	modelCache.Reset()
	modelHits.Store(0)
	modelMisses.Store(0)
}

// modelKey builds the canonical model-tier key: model version, model name,
// workload spec, branch budget, and the model's full parameterisation.
// params must cover every input the counts depend on — predictor geometry,
// estimator config, machine shape — or two distinct runs would alias.
func modelKey(model, spec string, branches uint64, params string) string {
	return fmt.Sprintf("model|v%d|%s|spec=%s|n=%d|%s", modelVersion, model, spec, branches, params)
}

// modelCounts serves one cycle-model invocation's count vector through the
// tier: process memo first, disk artifact second, live model run last.
// Concurrent claimants of one key share a single run. want is the vector
// length the caller's unpacker expects; a disk record of any other length
// is dropped and re-run — the belt under the modelVersion suspenders, so a
// model whose count set changed without a version bump costs a rebuild,
// never a panic in an unpacker.
func (s *Session) modelCounts(key string, want int, build func() ([]uint64, error)) ([]uint64, error) {
	if s.cfg.NoModelArtifact {
		return build()
	}
	e, owner := modelCache.Claim(key)
	if !owner {
		modelHits.Add(1)
		<-e.Done
		if e.Err != nil {
			return nil, e.Err
		}
		return e.Val.([]uint64), nil
	}
	modelMisses.Add(1)
	counts, ok := modelFromDisk(key)
	if ok && len(counts) != want {
		if st := artifact.Default(); st != nil {
			st.Drop(artifact.KindModelStats, key)
		}
		ok = false
	}
	if !ok {
		var err error
		counts, err = build()
		if err != nil {
			e.Err = err
			modelCache.Finish(e, 0)
			return nil, err
		}
		modelToDisk(key, counts)
	}
	e.Val = counts
	modelCache.Finish(e, uint64(len(counts))*8)
	return counts, nil
}

// marshalCounts frames a count vector for the artifact tier.
func marshalCounts(counts []uint64) []byte {
	out := make([]byte, 0, 8+len(counts)*8)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(counts)))
	for _, c := range counts {
		out = binary.LittleEndian.AppendUint64(out, c)
	}
	return out
}

// unmarshalCounts decodes a count vector, validating the framing; any
// structural mismatch is corruption, never a short vector.
func unmarshalCounts(data []byte) ([]uint64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("exp: model payload truncated: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != n*8 {
		return nil, fmt.Errorf("exp: model payload holds %d bytes for %d counts", len(data), n)
	}
	counts := make([]uint64, n)
	for i := range counts {
		counts[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return counts, nil
}

// modelFromDisk consults the persistent tier on an in-memory miss; a record
// failing the type-level decode is dropped fail-closed and re-run.
func modelFromDisk(key string) (counts []uint64, ok bool) {
	s := artifact.Default()
	if s == nil {
		return nil, false
	}
	pprof.Do(context.Background(), pprof.Labels("stage", "model-load"), func(context.Context) {
		payload, got := s.Get(artifact.KindModelStats, key)
		if !got {
			return
		}
		dec, err := unmarshalCounts(payload)
		if err != nil {
			s.Drop(artifact.KindModelStats, key)
			return
		}
		counts, ok = dec, true
	})
	return counts, ok
}

// modelToDisk publishes a freshly computed count vector, best effort.
func modelToDisk(key string, counts []uint64) {
	if s := artifact.Default(); s != nil {
		_ = s.Put(artifact.KindModelStats, key, marshalCounts(counts))
	}
}
