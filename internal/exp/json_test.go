package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	e, _ := ByID("table1")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != o.ID || back.Title != o.Title {
		t.Fatalf("identity lost: %q/%q", back.ID, back.Title)
	}
	if len(back.Rows) != len(o.Rows) {
		t.Fatalf("rows %d vs %d", len(back.Rows), len(o.Rows))
	}
	for i := range o.Rows {
		if math.Abs(back.Rows[i].CumMissesPct-o.Rows[i].CumMissesPct) > 1e-9 {
			t.Fatalf("row %d cum misses %.4f vs %.4f", i, back.Rows[i].CumMissesPct, o.Rows[i].CumMissesPct)
		}
	}
	for k, v := range o.Scalars {
		if math.Abs(back.Scalars[k]-v) > 1e-9 {
			t.Fatalf("scalar %s: %v vs %v", k, back.Scalars[k], v)
		}
	}
}

func TestJSONCurveRoundTrip(t *testing.T) {
	e, _ := ByID("fig2")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != 1 {
		t.Fatalf("%d series", len(back.Series))
	}
	// MispredsAt evaluates identically after the round trip.
	orig, rt := o.Series[0].Curve, back.Series[0].Curve
	for _, x := range []float64{5, 20, 50, 90} {
		if math.Abs(orig.MispredsAt(x)-rt.MispredsAt(x)) > 1e-9 {
			t.Fatalf("MispredsAt(%v) diverged", x)
		}
	}
}

func TestJSONThinning(t *testing.T) {
	e, _ := ByID("fig2")
	o, err := e.RunOnce(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	var full, thin bytes.Buffer
	if err := o.WriteJSON(&full, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteJSON(&thin, 2.5); err != nil {
		t.Fatal(err)
	}
	if thin.Len() >= full.Len() {
		t.Fatalf("thinned output (%d bytes) not smaller than full (%d)", thin.Len(), full.Len())
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}
