package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "apps",
		Title: "The four §1 applications driven by the recommended estimator",
		Paper: "§6: forking after ~20% of predictions captures >80% of mispredictions; reverser contingent on >50% buckets",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "apps", Title: "applications", Scalars: map[string]float64{}}
			var b strings.Builder

			// 1) Selective dual-path execution, averaged over the suite.
			var forkRate, coverage, savings float64
			n := 0
			for _, spec := range workload.Suite() {
				src, err := s.Source(spec)
				if err != nil {
					return nil, err
				}
				res, err := apps.RunDualPath(src, predictor.Gshare64K(), core.PaperEstimator(16), apps.DefaultDualPath())
				if err != nil {
					return nil, err
				}
				forkRate += res.ForkRate()
				coverage += res.Coverage()
				savings += res.PenaltySavings()
				n++
			}
			forkRate, coverage, savings = forkRate/float64(n), coverage/float64(n), savings/float64(n)
			fmt.Fprintf(&b, "dual-path:  fork on %.1f%% of branches -> cover %.1f%% of mispredictions, save %.1f%% of penalty cycles\n",
				100*forkRate, 100*coverage, 100*savings)
			o.Scalars["dualpath-forkRate%"] = 100 * forkRate
			o.Scalars["dualpath-coverage%"] = 100 * coverage
			o.Scalars["dualpath-savings%"] = 100 * savings

			// 2) SMT fetch gating: four mixed threads, gated vs round-robin.
			mkThreads := func() ([]*apps.SMTThread, error) {
				names := []string{"groff", "real_gcc", "jpeg_play", "sdet"}
				out := make([]*apps.SMTThread, 0, len(names))
				for _, name := range names {
					spec, err := workload.ByName(name)
					if err != nil {
						return nil, err
					}
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					out = append(out, &apps.SMTThread{Name: name, Src: src, Pred: predictor.Gshare4K(), Est: core.PaperEstimator(16)})
				}
				return out, nil
			}
			smtCfg := apps.SMTConfig{ResolveSlots: 6}
			threads, err := mkThreads()
			if err != nil {
				return nil, err
			}
			base, err := apps.RunSMT(threads, smtCfg, 4*s.Branches())
			if err != nil {
				return nil, err
			}
			smtCfg.Gated = true
			threads, err = mkThreads()
			if err != nil {
				return nil, err
			}
			gated, err := apps.RunSMT(threads, smtCfg, 4*s.Branches())
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, "smt-fetch:  efficiency %.2f%% round-robin -> %.2f%% confidence-gated\n",
				100*base.Efficiency(), 100*gated.Efficiency())
			o.Scalars["smt-base-eff%"] = 100 * base.Efficiency()
			o.Scalars["smt-gated-eff%"] = 100 * gated.Efficiency()

			// 3) Hybrid selector vs tournament, averaged over the suite.
			var confRate, tourRate, bimRate, gshRate float64
			for _, spec := range workload.Suite() {
				src, err := s.Source(spec)
				if err != nil {
					return nil, err
				}
				cmpRes, err := apps.CompareHybrids(src,
					func() predictor.Predictor { return predictor.NewBimodal(12) },
					func() predictor.Predictor { return predictor.NewGshare(12, 12) },
					12)
				if err != nil {
					return nil, err
				}
				confRate += cmpRes.Rate(cmpRes.ConfHybrid)
				tourRate += cmpRes.Rate(cmpRes.Tournament)
				bimRate += cmpRes.Rate(cmpRes.SoloA)
				gshRate += cmpRes.Rate(cmpRes.SoloB)
			}
			k := float64(len(workload.Suite()))
			fmt.Fprintf(&b, "hybrid:     mispredict%% bimodal %.2f, gshare %.2f, tournament %.2f, confidence-selected %.2f\n",
				100*bimRate/k, 100*gshRate/k, 100*tourRate/k, 100*confRate/k)
			o.Scalars["hybrid-conf%"] = 100 * confRate / k
			o.Scalars["hybrid-tournament%"] = 100 * tourRate / k

			// 4) Reverser: profile-derived reversal sets on the small
			// predictor (where >50% buckets are likelier).
			var deltaSum float64
			var setSum int
			for _, spec := range workload.Suite() {
				mkSrc := func() (trace.Source, error) { return s.Source(spec) }
				p1, err := mkSrc()
				if err != nil {
					return nil, err
				}
				p2, err := mkSrc()
				if err != nil {
					return nil, err
				}
				res, setSize, err := apps.ReverserStudy(p1, p2,
					func() predictor.Predictor { return predictor.Gshare4K() },
					func() core.Mechanism { return core.SmallResetting(12) }, 0.55)
				if err != nil {
					return nil, err
				}
				deltaSum += res.Delta()
				setSum += setSize
			}
			fmt.Fprintf(&b, "reverser:   mean mispredict-rate delta %.4f%% (negative = better), mean reversal-set size %.1f\n",
				100*deltaSum/k, float64(setSum)/k)
			o.Scalars["reverser-delta%"] = 100 * deltaSum / k

			o.Text = b.String()
			return o, nil
		},
	})
}
