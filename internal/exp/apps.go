package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

// packAppDual flattens an application-level dual-path run's counters for
// the model tier.
func packAppDual(r apps.DualPathResult) []uint64 {
	return []uint64{r.Branches, r.Misses, r.Forks, r.CoveredMiss, r.DeniedForks, r.BaseCycles, r.DualCycles}
}

const appDualLen = 7

func unpackAppDual(c []uint64) apps.DualPathResult {
	return apps.DualPathResult{Branches: c[0], Misses: c[1], Forks: c[2], CoveredMiss: c[3], DeniedForks: c[4], BaseCycles: c[5], DualCycles: c[6]}
}

// appDualParams canonicalises a dual-path study's machine shape for keys.
func appDualParams(pred, est string, cfg apps.DualPathConfig) string {
	return fmt.Sprintf("pred=%s|est=%s|pen=%d|forkpen=%d|threads=%d|resolve=%d",
		pred, est, cfg.MispredictPenalty, cfg.ForkPenalty, cfg.MaxThreads, cfg.ResolveDistance)
}

func init() {
	register(Experiment{
		ID:    "apps",
		Title: "The four §1 applications driven by the recommended estimator",
		Paper: "§6: forking after ~20% of predictions captures >80% of mispredictions; reverser contingent on >50% buckets",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "apps", Title: "applications", Scalars: map[string]float64{}}
			var b strings.Builder

			// 1) Selective dual-path execution, averaged over the suite.
			var forkRate, coverage, savings float64
			n := 0
			for _, spec := range workload.Suite() {
				params := appDualParams("gshare64k", "paper16", apps.DefaultDualPath())
				counts, err := s.modelCounts(modelKey("appdual", spec.Name, s.Branches(), params), appDualLen, func() ([]uint64, error) {
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					res, err := apps.RunDualPath(src, predictor.Gshare64K(), core.PaperEstimator(16), apps.DefaultDualPath())
					if err != nil {
						return nil, err
					}
					return packAppDual(res), nil
				})
				if err != nil {
					return nil, err
				}
				res := unpackAppDual(counts)
				forkRate += res.ForkRate()
				coverage += res.Coverage()
				savings += res.PenaltySavings()
				n++
			}
			forkRate, coverage, savings = forkRate/float64(n), coverage/float64(n), savings/float64(n)
			fmt.Fprintf(&b, "dual-path:  fork on %.1f%% of branches -> cover %.1f%% of mispredictions, save %.1f%% of penalty cycles\n",
				100*forkRate, 100*coverage, 100*savings)
			o.Scalars["dualpath-forkRate%"] = 100 * forkRate
			o.Scalars["dualpath-coverage%"] = 100 * coverage
			o.Scalars["dualpath-savings%"] = 100 * savings

			// 2) SMT fetch gating: four mixed threads, gated vs round-robin.
			mkThreads := func() ([]*apps.SMTThread, error) {
				names := []string{"groff", "real_gcc", "jpeg_play", "sdet"}
				out := make([]*apps.SMTThread, 0, len(names))
				for _, name := range names {
					spec, err := workload.ByName(name)
					if err != nil {
						return nil, err
					}
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					out = append(out, &apps.SMTThread{Name: name, Src: src, Pred: predictor.Gshare4K(), Est: core.PaperEstimator(16)})
				}
				return out, nil
			}
			// One SMT model run per policy, served through the model tier.
			// The thread mix is part of the key; PerThreadUse rides behind
			// the four scalar counters in the packed vector.
			runSMT := func(gated bool) (apps.SMTResult, error) {
				smtCfg := apps.SMTConfig{ResolveSlots: 6, Gated: gated}
				params := fmt.Sprintf("mix=groff+real_gcc+jpeg_play+sdet|pred=gshare4k|est=paper16|slots=%d|gated=%t", smtCfg.ResolveSlots, gated)
				counts, err := s.modelCounts(modelKey("smt", "mix4", 4*s.Branches(), params), 4+4, func() ([]uint64, error) {
					threads, err := mkThreads()
					if err != nil {
						return nil, err
					}
					res, err := apps.RunSMT(threads, smtCfg, 4*s.Branches())
					if err != nil {
						return nil, err
					}
					return append([]uint64{res.Slots, res.Useful, res.Wasted, res.GatedSkips}, res.PerThreadUse...), nil
				})
				if err != nil {
					return apps.SMTResult{}, err
				}
				return apps.SMTResult{Slots: counts[0], Useful: counts[1], Wasted: counts[2], GatedSkips: counts[3], PerThreadUse: counts[4:]}, nil
			}
			base, err := runSMT(false)
			if err != nil {
				return nil, err
			}
			gated, err := runSMT(true)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, "smt-fetch:  efficiency %.2f%% round-robin -> %.2f%% confidence-gated\n",
				100*base.Efficiency(), 100*gated.Efficiency())
			o.Scalars["smt-base-eff%"] = 100 * base.Efficiency()
			o.Scalars["smt-gated-eff%"] = 100 * gated.Efficiency()

			// 3) Hybrid selector vs tournament, averaged over the suite.
			var confRate, tourRate, bimRate, gshRate float64
			for _, spec := range workload.Suite() {
				counts, err := s.modelCounts(modelKey("hybrid", spec.Name, s.Branches(), "a=bimodal12|b=gshare12x12|chooser=12"), 5, func() ([]uint64, error) {
					src, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					r, err := apps.CompareHybrids(src,
						func() predictor.Predictor { return predictor.NewBimodal(12) },
						func() predictor.Predictor { return predictor.NewGshare(12, 12) },
						12)
					if err != nil {
						return nil, err
					}
					return []uint64{r.Branches, r.ConfHybrid, r.Tournament, r.SoloA, r.SoloB}, nil
				})
				if err != nil {
					return nil, err
				}
				cmpRes := apps.HybridComparison{Branches: counts[0], ConfHybrid: counts[1], Tournament: counts[2], SoloA: counts[3], SoloB: counts[4]}
				confRate += cmpRes.Rate(cmpRes.ConfHybrid)
				tourRate += cmpRes.Rate(cmpRes.Tournament)
				bimRate += cmpRes.Rate(cmpRes.SoloA)
				gshRate += cmpRes.Rate(cmpRes.SoloB)
			}
			k := float64(len(workload.Suite()))
			fmt.Fprintf(&b, "hybrid:     mispredict%% bimodal %.2f, gshare %.2f, tournament %.2f, confidence-selected %.2f\n",
				100*bimRate/k, 100*gshRate/k, 100*tourRate/k, 100*confRate/k)
			o.Scalars["hybrid-conf%"] = 100 * confRate / k
			o.Scalars["hybrid-tournament%"] = 100 * tourRate / k

			// 4) Reverser: profile-derived reversal sets on the small
			// predictor (where >50% buckets are likelier).
			var deltaSum float64
			var setSum int
			for _, spec := range workload.Suite() {
				counts, err := s.modelCounts(modelKey("reverser", spec.Name, s.Branches(), "pred=gshare4k|mech=smallreset12|thr=0.55"), 6, func() ([]uint64, error) {
					p1, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					p2, err := s.Source(spec)
					if err != nil {
						return nil, err
					}
					r, setSize, err := apps.ReverserStudy(p1, p2,
						func() predictor.Predictor { return predictor.Gshare4K() },
						func() core.Mechanism { return core.SmallResetting(12) }, 0.55)
					if err != nil {
						return nil, err
					}
					return []uint64{r.Branches, r.BaseMisses, r.ReversedMisses, r.Reversals, r.GoodReversals, uint64(setSize)}, nil
				})
				if err != nil {
					return nil, err
				}
				res := apps.ReverserResult{Branches: counts[0], BaseMisses: counts[1], ReversedMisses: counts[2], Reversals: counts[3], GoodReversals: counts[4]}
				deltaSum += res.Delta()
				setSum += int(counts[5])
			}
			fmt.Fprintf(&b, "reverser:   mean mispredict-rate delta %.4f%% (negative = better), mean reversal-set size %.1f\n",
				100*deltaSum/k, float64(setSum)/k)
			o.Scalars["reverser-delta%"] = 100 * deltaSum / k

			o.Text = b.String()
			return o, nil
		},
	})
}
