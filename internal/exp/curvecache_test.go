package exp

import (
	"math"
	"testing"

	"branchconf/internal/analysis"
)

// TestCurveCodecRoundTrip: the curve codec must reproduce every field
// bit-exactly — the tier's byte-identical-report guarantee rests on floats
// surviving the trip through their IEEE 754 bit patterns.
func TestCurveCodecRoundTrip(t *testing.T) {
	cv := analysis.Curve{
		{Key: analysis.Key{Run: -1, Bucket: 0}, Rate: 0.1, EventsPct: 1.0 / 3.0, MissesPct: 0, CumEventsPct: 33.333333333333336, CumMissesPct: 100},
		{Key: analysis.Key{Run: 7, Bucket: math.MaxUint64}, Rate: math.Nextafter(0.5, 1), EventsPct: 5e-324, MissesPct: math.MaxFloat64, CumEventsPct: 99.9, CumMissesPct: 0.0625},
	}
	dec, err := unmarshalCurve(marshalCurve(cv))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(cv) {
		t.Fatalf("round-trip length %d, want %d", len(dec), len(cv))
	}
	for i := range cv {
		if dec[i] != cv[i] {
			t.Errorf("point %d: %+v != %+v", i, dec[i], cv[i])
		}
	}
	// Empty curves marshal and decode as nil, matching what BuildCurve
	// returns for an empty composite.
	if dec, err := unmarshalCurve(marshalCurve(nil)); err != nil || dec != nil {
		t.Fatalf("empty curve round-trip: %v, %v", dec, err)
	}
}

// TestCurveCodecFailsClosed: any structural damage to a curve payload is an
// error, never a partial or padded curve.
func TestCurveCodecFailsClosed(t *testing.T) {
	payload := marshalCurve(analysis.Curve{
		{Key: analysis.Key{Run: 0, Bucket: 3}, Rate: 0.25},
		{Key: analysis.Key{Run: 1, Bucket: 9}, Rate: 0.75},
	})
	cases := map[string][]byte{
		"empty":           {},
		"short header":    payload[:5],
		"truncated point": payload[:len(payload)-8],
		"trailing bytes":  append(append([]byte{}, payload...), 0),
		"count mismatch": func() []byte {
			p := append([]byte{}, payload...)
			p[0]++ // claims one more point than the bytes hold
			return p
		}(),
	}
	for name, data := range cases {
		if cv, err := unmarshalCurve(data); err == nil {
			t.Errorf("%s: decoded to %d points, want error", name, len(cv))
		}
	}
}

// TestMergedRequiresDescriptor: an anonymous reduction cannot be cached —
// the descriptor is the function's cache identity — so Merged("") panics
// rather than risking cross-reduction aliasing.
func TestMergedRequiresDescriptor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merged(\"\") did not panic")
		}
	}()
	s := NewSession(Config{})
	s.Pooled(nil).Merged("", func(b uint64) uint64 { return b })
}

// TestHashRunsKeysContent: the content hash must be invariant to bucket-map
// iteration order and sensitive to every statistic and to run boundaries.
func TestHashRunsKeysContent(t *testing.T) {
	a := analysis.BucketStats{1: {Events: 10, Misses: 2}, 2: {Events: 5, Misses: 1}}
	b := analysis.BucketStats{2: {Events: 5, Misses: 1}, 1: {Events: 10, Misses: 2}}
	if analysis.HashRuns([]analysis.BucketStats{a}) != analysis.HashRuns([]analysis.BucketStats{b}) {
		t.Error("hash depends on bucket insertion order")
	}
	base := analysis.HashRuns([]analysis.BucketStats{a})
	mut := analysis.BucketStats{1: {Events: 10, Misses: 3}, 2: {Events: 5, Misses: 1}}
	if analysis.HashRuns([]analysis.BucketStats{mut}) == base {
		t.Error("hash missed a changed miss count")
	}
	// The same triples split differently across runs must hash differently.
	one := []analysis.BucketStats{{1: {Events: 10, Misses: 2}, 2: {Events: 5, Misses: 1}}}
	two := []analysis.BucketStats{{1: {Events: 10, Misses: 2}}, {2: {Events: 5, Misses: 1}}}
	if analysis.HashRuns(one) == analysis.HashRuns(two) {
		t.Error("hash missed a run boundary")
	}
}
