package exp

import (
	"bytes"
	"sync"
	"testing"

	"branchconf/internal/workload"
)

// TestExperimentsDeterministic runs a representative slice of the registry
// twice and requires byte-identical artefacts — the repository's
// reproducibility guarantee (README "Determinism"). Every class of
// experiment is covered: static profiling, one-level ideal, counter
// tables, per-benchmark runs, and an application model.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check runs experiments twice")
	}
	cfg := Config{Branches: 40000}
	for _, id := range []string{"fig2", "fig5", "table1", "fig9", "gating"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []byte {
			o, err := e.RunOnce(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var buf bytes.Buffer
			buf.WriteString(o.Text)
			if err := o.WriteJSON(&buf, 0); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs produced different artefacts", id)
		}
	}
}

// artefactBytes renders an output's text plus canonical JSON for
// byte-comparison.
func artefactBytes(t *testing.T, o *Output) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(o.Text)
	if err := o.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSharedSessionMatchesIsolatedRuns is the engine's byte-identity
// guarantee: experiments run concurrently against one shared session —
// traces replayed from the materialization cache, sibling mechanisms
// batched into shared predictor passes, results reused across experiments
// — must produce artefacts byte-identical to isolated one-experiment-per-
// session runs against freshly generated traces. The set covers every
// sharing mode: cross-experiment pass reuse (fig2/fig5/table1), batched
// fan-out (fig5/fig8), per-benchmark reads from cached passes (fig9),
// derived estimators and level ladders (thresholds/multilevel), mixed
// streaming+cached experiments (strength, static-realistic), and the
// single-pass replication batch.
func TestSharedSessionMatchesIsolatedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a registry slice twice")
	}
	ids := []string{
		"fig2", "fig5", "fig8", "table1", "fig9",
		"thresholds", "multilevel", "strength", "static-realistic", "replication",
	}
	cfg := Config{Branches: 30000}

	// Isolated reference runs: fresh session per experiment, traces
	// regenerated from the synthetic walk (cold materialization cache).
	want := make(map[string][]byte)
	for _, id := range ids {
		workload.ResetMaterializeCache()
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		o, err := e.RunOnce(cfg)
		if err != nil {
			t.Fatalf("%s (isolated): %v", id, err)
		}
		want[id] = artefactBytes(t, o)
	}
	workload.ResetMaterializeCache()

	// Shared engine run: all experiments concurrently on one session.
	session := NewSession(cfg)
	got := make(map[string][]byte)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := ByID(id)
			if err != nil {
				t.Error(err)
				return
			}
			o, err := e.Run(session)
			if err != nil {
				t.Errorf("%s (shared): %v", id, err)
				return
			}
			b := artefactBytes(t, o)
			mu.Lock()
			got[id] = b
			mu.Unlock()
		}()
	}
	wg.Wait()

	for _, id := range ids {
		if !bytes.Equal(got[id], want[id]) {
			t.Errorf("%s: shared-session artefact differs from isolated run", id)
		}
	}
	if hits, misses := session.Stats(); misses == 0 || hits == 0 {
		t.Errorf("pass cache did not both hit and miss (hits=%d misses=%d)", hits, misses)
	}
}

// TestTallyMatchesReplayArtefacts is the stage-3 engine's artefact-level
// byte-identity guarantee: every figure whose mechanisms ride the
// geometry-keyed tally path — the one-level scheme sweep (fig5), the
// two-level variants (fig6), the reduction/threshold family derived from a
// shared geometry (fig7/fig8), and the init-policy sweep (fig11) — must
// render byte-identical with the stage disabled (Config.NoTally, the
// PR 2 replay engine).
func TestTallyMatchesReplayArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a registry slice twice")
	}
	ids := []string{"fig5", "fig6", "fig7", "fig8", "fig11"}
	render := func(cfg Config) map[string][]byte {
		session := NewSession(cfg)
		out := make(map[string][]byte)
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			o, err := e.Run(session)
			if err != nil {
				t.Fatalf("%s (noTally=%v): %v", id, cfg.NoTally, err)
			}
			out[id] = artefactBytes(t, o)
		}
		return out
	}
	want := render(Config{Branches: 30000, NoTally: true})
	got := render(Config{Branches: 30000})
	for _, id := range ids {
		if !bytes.Equal(got[id], want[id]) {
			t.Errorf("%s: tally-path artefact differs from replay-path artefact", id)
		}
	}
}
