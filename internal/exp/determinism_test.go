package exp

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic runs a representative slice of the registry
// twice and requires byte-identical artefacts — the repository's
// reproducibility guarantee (README "Determinism"). Every class of
// experiment is covered: static profiling, one-level ideal, counter
// tables, per-benchmark runs, and an application model.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check runs experiments twice")
	}
	cfg := Config{Branches: 40000}
	for _, id := range []string{"fig2", "fig5", "table1", "fig9", "gating"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []byte {
			o, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var buf bytes.Buffer
			buf.WriteString(o.Text)
			if err := o.WriteJSON(&buf, 0); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs produced different artefacts", id)
		}
	}
}
