package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "baseline",
		Title: "Underlying predictor misprediction rates (composite, equal-weight)",
		Paper: "gshare-64K: 3.85%; gshare-4K: 8.6%",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "baseline", Title: "predictor baselines", Scalars: map[string]float64{}}
			var b strings.Builder
			b.WriteString("baseline — composite misprediction rates\n")
			for _, name := range predictor.Names() {
				name := name
				sr, err := s.SuiteOne(PredSpec{
					Key: name,
					New: func() predictor.Predictor {
						p, err := predictor.Build(name)
						if err != nil {
							panic(err) // registry names are valid by construction
						}
						return p
					},
				}, mechStatic)
				if err != nil {
					return nil, err
				}
				rate := sr.CompositeMissRate()
				o.Scalars[name] = rate
				fmt.Fprintf(&b, "%-16s %6.2f%%\n", name, 100*rate)
			}
			o.Text = b.String()
			return o, nil
		},
	})

	register(Experiment{
		ID:    "thresholds",
		Title: "Practical estimator operating points (resetting counters, thresholds 1..16)",
		Paper: "Table 1 cumulative rows read as thresholds: 1 → 41.7%/4.28%, 16 → 89.3%/20.3%",
		Run: func(s *Session) (*Output, error) {
			o := &Output{ID: "thresholds", Title: "estimator operating points", Scalars: map[string]float64{}}
			// One cached resetting-counter pass supplies every threshold:
			// an estimator's low/high split is an exact partition of the
			// per-bucket statistics (sim.DeriveEstimator), so no further
			// simulation is needed.
			sr, err := s.SuiteOne(predGshare64K, mechResetting)
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			b.WriteString("threshold  low-set%branches  coverage%mispreds    PVN%\n")
			for _, thr := range []uint64{1, 2, 4, 8, 12, 16} {
				var lowSum, covSum, pvnSum float64
				runs := 0
				for _, run := range sr.Runs {
					res := sim.DeriveEstimator(run, core.CounterReducer{Threshold: thr})
					lowSum += res.LowFrac()
					covSum += res.Coverage()
					pvnSum += res.PVN()
					runs++
				}
				low := 100 * lowSum / float64(runs)
				cov := 100 * covSum / float64(runs)
				pvn := 100 * pvnSum / float64(runs)
				fmt.Fprintf(&b, "%9d  %16.2f  %17.2f  %6.2f\n", thr, low, cov, pvn)
				o.Scalars[fmt.Sprintf("thr%d-low%%", thr)] = low
				o.Scalars[fmt.Sprintf("thr%d-coverage%%", thr)] = cov
			}
			o.Text = b.String()
			return o, nil
		},
	})
}
