package exp

import (
	"fmt"
	"strings"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// The realtrace experiment runs the comparison the paper's §6 sketches as
// future work: modern predictors carry their own per-prediction confidence
// estimate — TAGE's provider-counter strength, the perceptron's output
// margin — so how does that *native* signal stack up against the paper's
// dedicated CIR tables? It replays one recorded ChampSim trace through
// three predictors on identical branch streams:
//
//   - gshare-64K, the paper's reference predictor, with the CIR tables
//     only (gshare has no native confidence estimate),
//   - TAGE and the hashed perceptron, each with their native confidence
//     lane (core.NativeConfidence over the 2-bit annotation state) next
//     to the same CIR tables,
//
// and reports each signal's mispredict coverage at 20% of dynamic
// branches plus the predictor's miss rate — native confidence and CIR
// tables side by side, on the same real trace.
//
// The experiment is OptIn and needs Config.TraceFile: record a trace with
// `tracegen -format champsim` (or bring any ChampSim-format trace) and
// pass it with -trace. The trace's identity is its content digest, so
// every cache tier (annotated streams, bucket streams, curves, daemon
// report cache) warms across runs and machines regardless of the path.
func init() {
	register(Experiment{
		ID:    "realtrace",
		Title: "Native predictor confidence vs CIR tables on a recorded trace",
		Paper: "not in the paper; §6 names self-confident predictors as the natural follow-on",
		OptIn: true,
		Run:   runRealTrace,
	})
}

// predFromRegistry adapts a registered predictor configuration into a
// PredSpec without duplicating its geometry here.
func predFromRegistry(key string) PredSpec {
	return PredSpec{Key: key, New: func() predictor.Predictor {
		p, err := predictor.Build(key)
		if err != nil {
			panic(err)
		}
		return p
	}}
}

func runRealTrace(s *Session) (*Output, error) {
	cfg := s.Config()
	if cfg.TraceFile == "" {
		return nil, fmt.Errorf("realtrace replays a recorded trace: record one with `tracegen -bench real_gcc -format champsim -o gcc.champsim` and pass -trace gcc.champsim")
	}
	spec, err := workload.TraceSpec("", cfg.TraceFile)
	if err != nil {
		return nil, err
	}
	// Resolve the budget against the recording up front so every engine —
	// monolithic, streaming, annotated or batched — keys its artifacts on
	// the same branch count.
	n := cfg.Branches
	if n == 0 || n > spec.TraceCount {
		n = spec.TraceCount
	}

	// Columns: the native lane first, then the paper's CIR tables. The
	// native mechanism is state-coupled (it reads the predictor's 2-bit
	// confidence annotation), so it rides the annotated path; the CIR
	// tables stay factorable and keep their tally kernels.
	cols := []struct {
		label string
		newM  func() core.Mechanism
	}{
		{"native", func() core.Mechanism { return core.NewAnnotatedConfidence() }},
		{"resetting", func() core.Mechanism { return core.PaperResetting() }},
		{"onelevel-pc^bhr", func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) }},
	}
	legs := []struct {
		pred   PredSpec
		native bool
	}{
		{predGshare64K, false}, // no native estimate: CIR tables only
		{predFromRegistry("tage"), true},
		{predFromRegistry("perceptron"), true},
	}

	o := &Output{
		ID:      "realtrace",
		Title:   "native confidence vs CIR tables on a recorded trace",
		Scalars: map[string]float64{},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d conditional branches (sha256 %s…), budget %d\n\n",
		spec.Name, spec.TraceCount, spec.TraceDigest[:12], n)
	fmt.Fprintf(&b, "%-12s %7s", "predictor", "miss%")
	for _, c := range cols {
		fmt.Fprintf(&b, "  %18s", c.label+"@20%")
	}
	b.WriteString("\n")

	for _, leg := range legs {
		active := cols
		if !leg.native {
			active = cols[1:]
		}
		newMechs := make([]func() core.Mechanism, len(active))
		for i, c := range active {
			newMechs[i] = c.newM
		}
		// The budget differs from the session's, so these passes bypass the
		// session pass cache and hit the sim engine directly — streaming
		// when the session streams, with nil Source/Buffer picking the sim
		// defaults (the spec's own trace-file source).
		scfg := sim.SuiteConfig{
			Branches:        n,
			Specs:           []workload.Spec{spec},
			NoTally:         cfg.NoTally,
			SegmentBranches: cfg.SegmentBranches,
		}
		var rs []sim.SuiteResult
		var err error
		if cfg.NoAnnotate {
			rs, err = sim.RunSuiteBatch(scfg, leg.pred.New, newMechs)
		} else {
			rs, err = sim.RunSuiteAnnotated(scfg, leg.pred.Key, leg.pred.New, newMechs)
		}
		if err != nil {
			return nil, fmt.Errorf("realtrace %s: %w", leg.pred.Key, err)
		}
		miss := 100 * rs[0].CompositeMissRate()
		fmt.Fprintf(&b, "%-12s %6.2f%%", leg.pred.Key, miss)
		o.Scalars["miss%/"+leg.pred.Key] = miss
		ri := 0
		for _, c := range cols {
			if !leg.native && c.label == "native" {
				fmt.Fprintf(&b, "  %18s", "—")
				continue
			}
			var curve analysis.Curve
			if cfg.NoCurveArtifact {
				curve = analysis.BuildCurve(analysis.CompositePooled(rs[ri].Stats()))
			} else {
				curve = s.Pooled(rs[ri].Stats()).Curve()
			}
			cov := curve.MispredsAt(20)
			fmt.Fprintf(&b, "  %17.2f%%", cov)
			o.Scalars[leg.pred.Key+"/"+c.label+"@20%"] = cov
			ri++
		}
		b.WriteString("\n")
	}
	o.Text = b.String()
	return o, nil
}
