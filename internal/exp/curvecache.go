package exp

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"branchconf/internal/analysis"
	"branchconf/internal/artifact"
	"branchconf/internal/memo"
)

// The curve tier: sorted confidence curves are pure functions of the
// per-run integer tallies and the reduction layered on top (composite
// mode plus an optional bucket-merge), so they memoize and persist exactly
// like the simulation intermediates below them. The key is the content
// hash of the tallies (analysis.HashRuns) plus the reduction parameters —
// never an experiment identity — so two experiments deriving the same
// curve share one build, and any change to engine output self-invalidates
// every dependent curve.
//
// Warm runs served from this tier skip BuildCurve and the composite build
// entirely: CurveSet defers CompositePooled/CompositeDistinct/Single until
// something actually needs the weighted composite, which on a full curve
// hit is never. Config.NoCurveArtifact bypasses the tier (memory and disk)
// for A/B runs; results are byte-identical either way because the codec
// round-trips every float through its exact bit pattern.

// curveCache is the process-wide curve memo, a sibling of the annotated
// and bucket-stream byteLRUs. Its resident bound follows the annotated
// budget unless SetCurveCacheBound overrides it.
var curveCache memo.ByteLRU

var curveHits, curveMisses atomic.Uint64

// curveBoundOverridden records an explicit SetCurveCacheBound call, after
// which SetCurveCacheDefaultBound no longer tracks the annotated bound.
var curveBoundOverridden atomic.Bool

// SetCurveCacheBound bounds the resident payload bytes of the curve cache,
// overriding the default of following the annotated cache's bound. 0
// removes the bound.
func SetCurveCacheBound(bytes uint64) {
	curveBoundOverridden.Store(true)
	curveCache.SetBound(bytes)
}

// SetCurveCacheDefaultBound points the curve cache at the shared
// -annotate-cache-mb budget figure; an explicit SetCurveCacheBound wins.
func SetCurveCacheDefaultBound(bytes uint64) {
	if !curveBoundOverridden.Load() {
		curveCache.SetBound(bytes)
	}
}

// CurveCacheReport returns the curve cache's observability quad.
func CurveCacheReport() artifact.TierStats {
	r, e := curveCache.Usage()
	return artifact.TierStats{Hits: curveHits.Load(), Misses: curveMisses.Load(), Evictions: e, ResidentBytes: r}
}

// ResetCurveCache drops every cached curve and zeroes the counters. The
// bound (and whether it was overridden) is retained.
func ResetCurveCache() {
	curveCache.Reset()
	curveHits.Store(0)
	curveMisses.Store(0)
}

// CurveSet is one composite's worth of curves: a set of per-run tallies
// plus a composite mode, from which any number of reductions (the identity
// curve and bucket-merged variants) are derived. The weighted composite
// itself is built lazily — a warm run whose curves all hit the cache never
// pays CompositePooled at all — and at most once, shared across the set's
// reductions (fig8 derives ideal and ones-count curves from one pooled
// composite; both cold builds share it here too).
type CurveSet struct {
	s    *Session
	mode string // "pooled" | "distinct" | "single"
	runs []analysis.BucketStats

	hashOnce sync.Once
	hash     string

	wsOnce sync.Once
	ws     analysis.WeightedStats
}

// Pooled returns the curve set over the equal-weight pooled composite of
// runs (analysis.CompositePooled).
func (s *Session) Pooled(runs []analysis.BucketStats) *CurveSet {
	return &CurveSet{s: s, mode: "pooled", runs: runs}
}

// Distinct returns the curve set over the equal-weight run-distinct
// composite of runs (analysis.CompositeDistinct).
func (s *Session) Distinct(runs []analysis.BucketStats) *CurveSet {
	return &CurveSet{s: s, mode: "distinct", runs: runs}
}

// SingleRun returns the curve set over one unweighted run
// (analysis.Single).
func (s *Session) SingleRun(bs analysis.BucketStats) *CurveSet {
	return &CurveSet{s: s, mode: "single", runs: []analysis.BucketStats{bs}}
}

// Stats returns the set's weighted composite, building it on first use.
// Callers that need the composite itself (threshold tables, miss rates,
// BuildCurveOrdered) take it from here so a sibling Curve build shares it.
func (c *CurveSet) Stats() analysis.WeightedStats {
	c.wsOnce.Do(func() {
		switch c.mode {
		case "pooled":
			c.ws = analysis.CompositePooled(c.runs)
		case "distinct":
			c.ws = analysis.CompositeDistinct(c.runs)
		default:
			c.ws = analysis.Single(c.runs[0])
		}
	})
	return c.ws
}

// contentHash returns the set's tally content hash, computed at most once.
func (c *CurveSet) contentHash() string {
	c.hashOnce.Do(func() {
		h := analysis.HashRuns(c.runs)
		c.hash = hex.EncodeToString(h[:])
	})
	return c.hash
}

// Curve returns the set's sorted curve under the identity reduction.
func (c *CurveSet) Curve() analysis.Curve {
	return c.curve("", nil)
}

// Merged returns the set's sorted curve after rewriting buckets through
// fn (analysis.WeightedStats.MergeBuckets). desc must uniquely identify
// fn's behaviour — it is the reduction's cache identity; equal descriptors
// with different functions would serve wrong curves.
func (c *CurveSet) Merged(desc string, fn func(uint64) uint64) analysis.Curve {
	if desc == "" {
		panic("exp: Merged requires a non-empty reduction descriptor")
	}
	return c.curve(desc, fn)
}

// build constructs the curve directly from the composite.
func (c *CurveSet) build(fn func(uint64) uint64) analysis.Curve {
	ws := c.Stats()
	if fn != nil {
		ws = ws.MergeBuckets(fn)
	}
	return analysis.BuildCurve(ws)
}

// curve serves one (tallies, mode, reduction) curve through the tier:
// process memo first, disk artifact second, direct build last. Concurrent
// claimants of one key share a single build.
func (c *CurveSet) curve(desc string, fn func(uint64) uint64) analysis.Curve {
	if c.s.cfg.NoCurveArtifact {
		return c.build(fn)
	}
	key := curveArtifactKey(c.contentHash(), c.mode, desc)
	e, owner := curveCache.Claim(key)
	if !owner {
		curveHits.Add(1)
		<-e.Done
		cv, _ := e.Val.(analysis.Curve)
		return cv
	}
	curveMisses.Add(1)
	cv, fromDisk := curveFromDisk(key)
	if !fromDisk {
		cv = c.build(fn)
		curveToDisk(key, cv)
	}
	e.Val = cv
	curveCache.Finish(e, uint64(len(cv))*curvePointWire)
	return cv
}

// curveArtifactKey is the canonical store key for one curve: codec
// version, tally content hash, composite mode, and reduction descriptor.
func curveArtifactKey(hash, mode, desc string) string {
	return fmt.Sprintf("curve|v%d|%s|mode=%s|merge=%s", artifact.FormatVersion, hash, mode, desc)
}

// curvePointWire is the wire size of one curve point: seven 64-bit words
// (run, bucket, rate, and the four percentage columns).
const curvePointWire = 7 * 8

// marshalCurve encodes a curve for the artifact tier. Floats are stored as
// IEEE 754 bit patterns, so a decoded curve is byte-identical to the built
// one in every downstream rendering.
func marshalCurve(cv analysis.Curve) []byte {
	out := make([]byte, 0, 8+len(cv)*curvePointWire)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(cv)))
	for _, p := range cv {
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(p.Key.Run)))
		out = binary.LittleEndian.AppendUint64(out, p.Key.Bucket)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Rate))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.EventsPct))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.MissesPct))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.CumEventsPct))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.CumMissesPct))
	}
	return out
}

// unmarshalCurve decodes a curve payload, validating the framing
// exhaustively: any structural mismatch is corruption, never a partial
// curve.
func unmarshalCurve(data []byte) (analysis.Curve, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("exp: curve payload truncated: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != n*curvePointWire {
		return nil, fmt.Errorf("exp: curve payload holds %d bytes for %d points", len(data), n)
	}
	if n == 0 {
		return nil, nil // an empty curve marshals and builds as nil
	}
	cv := make(analysis.Curve, n)
	for i := range cv {
		w := data[i*curvePointWire:]
		cv[i] = analysis.Point{
			Key: analysis.Key{
				Run:    int(int64(binary.LittleEndian.Uint64(w))),
				Bucket: binary.LittleEndian.Uint64(w[8:]),
			},
			Rate:         math.Float64frombits(binary.LittleEndian.Uint64(w[16:])),
			EventsPct:    math.Float64frombits(binary.LittleEndian.Uint64(w[24:])),
			MissesPct:    math.Float64frombits(binary.LittleEndian.Uint64(w[32:])),
			CumEventsPct: math.Float64frombits(binary.LittleEndian.Uint64(w[40:])),
			CumMissesPct: math.Float64frombits(binary.LittleEndian.Uint64(w[48:])),
		}
	}
	return cv, nil
}

// curveFromDisk consults the persistent artifact tier on an in-memory
// miss. ok distinguishes a served curve (possibly nil — empty curves are
// legitimate) from a miss; a record failing the type-level decode is
// dropped fail-closed and rebuilt.
func curveFromDisk(key string) (cv analysis.Curve, ok bool) {
	s := artifact.Default()
	if s == nil {
		return nil, false
	}
	pprof.Do(context.Background(), pprof.Labels("stage", "curve-load"), func(context.Context) {
		payload, got := s.Get(artifact.KindCurve, key)
		if !got {
			return
		}
		dec, err := unmarshalCurve(payload)
		if err != nil {
			s.Drop(artifact.KindCurve, key)
			return
		}
		cv, ok = dec, true
	})
	return cv, ok
}

// curveToDisk publishes a freshly built curve to the persistent tier, best
// effort; the store owns retry and degradation, so its error is
// deliberately ignored.
func curveToDisk(key string, cv analysis.Curve) {
	if s := artifact.Default(); s != nil {
		_ = s.Put(artifact.KindCurve, key, marshalCurve(cv))
	}
}
