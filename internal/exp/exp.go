// Package exp is the experiment registry: one runnable experiment per
// table and figure in the paper's evaluation, plus baseline measurements
// and ablations of the design choices DESIGN.md calls out. Each experiment
// regenerates the corresponding artefact as structured data (curves or
// table rows) and a textual rendering.
package exp

import (
	"fmt"
	"sort"

	"branchconf/internal/analysis"
)

// Config parameterises an experiment run.
type Config struct {
	// Branches is the per-benchmark dynamic branch budget; 0 uses each
	// benchmark's default (1M).
	Branches uint64
	// NoAnnotate disables the two-stage annotated engine and runs every
	// suite pass through the interleaved single-pass engine instead.
	// Results are byte-identical either way; the switch exists for
	// benchmarking the engines against each other and as an escape hatch.
	NoAnnotate bool
	// NoTally disables the stage-3 tally engine within the annotated
	// engine: factorable mechanisms replay per-variant instead of sharing
	// geometry-keyed bucket streams. Results are byte-identical either way.
	NoTally bool
	// NoCurveArtifact disables the curve tier: every curve is built
	// directly from its composite instead of being served from the
	// content-hash-keyed memo and disk artifact. Results are byte-identical
	// either way; the switch exists for A/B benchmarking.
	NoCurveArtifact bool
	// NoModelArtifact disables the model tier: every cycle-driven
	// application model runs live instead of serving its count vector from
	// the memo and disk artifact. Results are byte-identical either way.
	NoModelArtifact bool
	// SegmentBranches, when non-zero, routes suite passes through the
	// segmented streaming engine: traces are walked in segments of this
	// many branches with bounded resident memory and checkpointed resume,
	// instead of being materialized whole. Results are byte-identical; the
	// switch exists for long-horizon runs no whole-trace buffer can hold.
	SegmentBranches uint64
	// TraceFile points the realtrace experiment at a recorded ChampSim
	// trace on disk (empty = the experiment reports how to record one).
	// The file's identity is content-addressed — artifacts and report
	// caches key on its digest and branch count, never on the path.
	TraceFile string
}

// Output is an experiment's regenerated artefact.
type Output struct {
	// ID and Title identify the paper artefact ("fig5", "table1", ...).
	ID, Title string
	// Series holds the figure's curves, one per plotted method.
	Series []analysis.Series
	// Rows holds Table 1-style rows when the artefact is a table.
	Rows []analysis.TableRow
	// Scalars holds named scalar results (misprediction rates etc.),
	// and Notes the paper's reference values for them.
	Scalars map[string]float64
	// Text is the rendered artefact.
	Text string
}

// Experiment regenerates one paper artefact.
type Experiment struct {
	// ID is the registry key ("fig2" ... "fig11", "table1", "baseline",
	// "ablation-*").
	ID string
	// Title describes the artefact.
	Title string
	// Paper summarises the paper's reported result for comparison.
	Paper string
	// Run executes the experiment against a session. Experiments declare
	// their (predictor, mechanism-set) needs through the session so
	// simulation passes are batched and shared; a session may be shared by
	// many experiments, concurrently.
	Run func(*Session) (*Output, error)
	// OptIn marks an experiment a default report run skips: it only
	// executes when a filter names it explicitly (the long-horizon sweep,
	// whose interesting budgets dwarf the default report's).
	OptIn bool
}

// RunOnce executes the experiment against a fresh private session — the
// one-shot form for callers outside a report run. Materialized traces are
// still shared process-wide; only the pass cache is private.
func (e Experiment) RunOnce(cfg Config) (*Output, error) {
	return e.Run(NewSession(cfg))
}

var registry = map[string]Experiment{}
var order []string

// register adds an experiment at package init.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// ByID returns the registered experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (available: %v)", id, IDs())
	}
	return e, nil
}

// IDs returns all experiment IDs in registration order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// figureXs are the cumulative-branch percentages figures are tabulated at.
var figureXs = []float64{5, 10, 20, 30, 40, 60, 80}

// renderFigure builds the standard text form of a figure output.
func renderFigure(o *Output) {
	o.Text = analysis.FormatFigure(fmt.Sprintf("%s — %s", o.ID, o.Title), o.Series, figureXs)
}

// sortedScalarNames returns scalar keys in stable order for rendering.
func sortedScalarNames(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
