package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, tr Trace) Trace {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	tr := sample(1000)
	got := roundTrip(t, tr)
	if len(got) != len(tr) {
		t.Fatalf("got %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], tr[i])
		}
	}
}

func TestCodecRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, Trace{}); len(got) != 0 {
		t.Fatalf("empty trace round-tripped to %d records", len(got))
	}
}

// Property: arbitrary records round-trip exactly, including extreme PC
// deltas in both directions.
func TestCodecRoundTripQuick(t *testing.T) {
	check := func(pcs []uint64, targets []uint64, takens []bool, gaps []uint32) bool {
		n := len(pcs)
		for _, other := range []int{len(targets), len(takens), len(gaps)} {
			if other < n {
				n = other
			}
		}
		tr := make(Trace, n)
		for i := 0; i < n; i++ {
			tr[i] = Record{PC: pcs[i], Target: targets[i], Taken: takens[i], Gap: gaps[i]}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range tr {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(rd, 0)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("XXXX....")))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("BC")))
	if err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{PC: 0x4000, Target: 0x4010, Taken: true, Gap: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop off the last byte: the record must error, not silently succeed.
	data := buf.Bytes()[:buf.Len()-1]
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated record returned %v, want hard error", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := sample(7)
	n, err := w.WriteAll(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 || w.Count() != 7 {
		t.Fatalf("WriteAll = %d, Count = %d, want 7", n, w.Count())
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential same-page branches should cost only a few bytes each.
	tr := make(Trace, 1000)
	for i := range tr {
		pc := uint64(0x10000 + 4*(i%64))
		tr[i] = Record{PC: pc, Target: pc + 16, Taken: i%3 == 0, Gap: uint32(i % 8)}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAll(tr.Source()); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(tr))
	if perRecord > 6 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRecord)
	}
}

func TestReaderCount(t *testing.T) {
	tr := sample(5)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if _, err := w.WriteAll(tr.Source()); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(rd, 0); err != nil {
		t.Fatal(err)
	}
	if rd.Count() != 5 {
		t.Fatalf("reader Count = %d, want 5", rd.Count())
	}
}

func BenchmarkWriter(b *testing.B) {
	tr := sample(1)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(tr[0]); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}
