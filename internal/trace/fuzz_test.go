package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary record tuples through the BCT1 codec
// and requires exact reconstruction. Run with `go test -fuzz=FuzzCodec`
// for continuous fuzzing; the seed corpus runs under plain `go test`.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x1040), true, uint32(3))
	f.Add(uint64(0), uint64(0), false, uint32(0))
	f.Add(^uint64(0), uint64(1), true, uint32(1<<31))
	f.Add(uint64(1<<63), ^uint64(0), false, ^uint32(0))
	f.Fuzz(func(t *testing.T, pc, target uint64, taken bool, gap uint32) {
		rec := Record{PC: pc, Target: target, Taken: taken, Gap: gap}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Write the record twice to exercise delta encoding against itself.
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != rec {
				t.Fatalf("record %d: got %+v want %+v", i, got, rec)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	})
}

// FuzzReaderRobustness feeds arbitrary bytes to the reader and requires it
// to terminate with a clean error or EOF — never panic or loop.
func FuzzReaderRobustness(f *testing.F) {
	f.Add([]byte("BCT1"))
	f.Add([]byte("BCT1\x02\x04\x06"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				return // EOF or a decode error: fine
			}
		}
	})
}
