package trace

import (
	"errors"
	"io"
	"testing"
)

// randomishTrace builds a trace exercising the encoder's edge cases:
// backward deltas, large address jumps, zero and large gaps.
func randomishTrace(n int) Trace {
	tr := make(Trace, 0, n)
	pc := uint64(0x10_0000)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			pc += 16
		case 1:
			pc -= 64 // backward delta
		case 2:
			pc += 1 << 20 // routine jump
		case 3:
			pc = uint64(i) * 0x9E3779B97F4A7C15 // wild address
		case 4:
			pc += 4
		}
		tr = append(tr, Record{
			PC:     pc,
			Target: pc + uint64(int64(i%7-3))*8,
			Taken:  i%3 != 0,
			Gap:    uint32(i % 1000),
		})
	}
	return tr
}

func TestReplayBufferRoundTrip(t *testing.T) {
	tr := randomishTrace(5000)
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(tr) {
		t.Fatalf("Len = %d, want %d", buf.Len(), len(tr))
	}
	got, err := Collect(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("replayed %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], tr[i])
		}
	}
}

func TestReplayBufferLimit(t *testing.T) {
	tr := randomishTrace(100)
	buf, err := Materialize(tr.Source(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 40 {
		t.Fatalf("Len = %d, want 40", buf.Len())
	}
}

func TestReplayBufferIndependentSources(t *testing.T) {
	tr := randomishTrace(64)
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := buf.Source(), buf.Source()
	// Advance a; b must still start from the beginning.
	for i := 0; i < 10; i++ {
		if _, err := a.Next(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r != tr[0] {
		t.Fatalf("second source started at %+v, want %+v", r, tr[0])
	}
}

func TestReplayBufferEOF(t *testing.T) {
	buf, err := Materialize(Trace{}.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Source().Next(); err != io.EOF {
		t.Fatalf("empty buffer Next err = %v, want io.EOF", err)
	}
}

func TestMaterializePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	src := FuncSource(func() (Record, error) {
		calls++
		if calls > 3 {
			return Record{}, boom
		}
		return Record{PC: 0x100}, nil
	})
	if _, err := Materialize(src, 0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestReplayBufferFootprintCompact(t *testing.T) {
	// A realistic-looking loop trace must encode well under the 24 bytes
	// per record of []Record.
	tr := make(Trace, 10000)
	for i := range tr {
		pc := 0x40_0000 + uint64(i%50)*4
		tr[i] = Record{PC: pc, Target: pc + 32, Taken: i%2 == 0, Gap: uint32(2 + i%9)}
	}
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Footprint()) / float64(len(tr))
	if perRecord > 8 {
		t.Fatalf("%.1f bytes/record, want compact (< 8)", perRecord)
	}
}
