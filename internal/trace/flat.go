package trace

// FlatView is a decoded, random-access view of a replay buffer for the
// mechanism and predictor stages of the two-stage simulation engine. Where
// a replay Source pays a varint decode per record, a flat view is one
// slice load, which matters when dozens of mechanism variants replay the
// same trace.
//
// The view holds complete records — PC, Target, Taken and Gap — because
// its consumers feed real predictors (BTFN and agree predictors read the
// target to classify backward branches) and, through the gating models,
// fetch-bandwidth accounting. The cost is flatRecordBytes per branch;
// callers that retain views should bound them (see
// sim.SetAnnotatedCacheBound).
//
// A flat view is immutable and safe for concurrent readers.
type FlatView struct {
	recs []Record
}

// flatRecordBytes is the in-memory size of one decoded Record (8-byte PC
// and Target, bool Taken padded with the uint32 Gap to one more word).
const flatRecordBytes = 24

// Flatten decodes the buffer's record stream into a flat view.
func (b *ReplayBuffer) Flatten() *FlatView { return b.FlattenInto(nil) }

// FlattenInto decodes the buffer into v, reusing v's record storage when
// its capacity suffices; v may be nil for a fresh view. The streaming
// engine flattens every segment through one scratch view per unit, so the
// dominant 24-bytes-per-branch decode buffer is allocated once per unit
// instead of once per segment. The returned view aliases v's storage:
// records from the previous flatten are overwritten.
func (b *ReplayBuffer) FlattenInto(v *FlatView) *FlatView {
	if v == nil {
		v = &FlatView{}
	}
	if cap(v.recs) < b.n {
		v.recs = make([]Record, b.n)
	}
	v.recs = v.recs[:b.n]
	src := b.Source().(*replaySource)
	for i := 0; i < b.n; i++ {
		r, err := src.Next()
		if err != nil {
			// A fully built buffer replays exactly n records; anything else
			// is a corrupted buffer, which Materialize cannot produce.
			panic("trace: replay buffer shorter than its length")
		}
		v.recs[i] = r
	}
	return v
}

// Len returns the number of branches in the view.
func (v *FlatView) Len() int { return len(v.recs) }

// Record returns the i-th decoded record.
func (v *FlatView) Record(i int) Record { return v.recs[i] }

// Records returns the decoded record slice backing the view. The slice is
// immutable by contract — it exists so monomorphic stream kernels (the
// factored bucket-lane builders in internal/core) can walk the lanes
// without a method call per branch.
func (v *FlatView) Records() []Record { return v.recs }

// PC returns the i-th branch address.
func (v *FlatView) PC(i int) uint64 { return v.recs[i].PC }

// Taken reports the i-th resolved direction.
func (v *FlatView) Taken(i int) bool { return v.recs[i].Taken }

// Footprint returns the view's payload bytes.
func (v *FlatView) Footprint() uint64 { return uint64(len(v.recs)) * flatRecordBytes }
