package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// champSimExpected applies the reader's documented target-recovery rule to
// a record stream the writer will emit: a taken branch's target is the ip
// of its successor instruction (the next record's branch when its Gap is
// 0, otherwise the filler carrying the written target), a not-taken
// branch reuses the last taken target at its PC, falling back to PC+4.
func champSimExpected(recs []Record) []Record {
	last := make(map[uint64]uint64)
	exp := make([]Record, len(recs))
	for i, r := range recs {
		e := r
		if r.Taken {
			t := r.Target
			if i+1 < len(recs) && recs[i+1].Gap == 0 {
				t = recs[i+1].PC
			}
			e.Target = t
			last[r.PC] = t
		} else if t, ok := last[r.PC]; ok {
			e.Target = t
		} else {
			e.Target = r.PC + 4
		}
		exp[i] = e
	}
	return exp
}

func champSimRoundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewChampSimWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%champSimRecordSize != 0 {
		t.Fatalf("writer emitted %d bytes, not a multiple of %d", buf.Len(), champSimRecordSize)
	}
	r := NewChampSimReader(&buf)
	var got []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", len(got), err)
		}
		got = append(got, rec)
	}
	if r.Count() != uint64(len(got)) {
		t.Fatalf("Count() = %d, emitted %d", r.Count(), len(got))
	}
	return got
}

func TestChampSimRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x401000, Target: 0x401080, Taken: true, Gap: 3},
		{PC: 0x401084, Target: 0x401000, Taken: true, Gap: 0}, // back-to-back after taken
		{PC: 0x401000, Target: 0x401084, Taken: false, Gap: 2},
		{PC: 0x402000, Target: 0x402abc, Taken: false, Gap: 0}, // never-taken PC: fall-through rule
		{PC: 0x401000, Target: 0x401084, Taken: true, Gap: 7},
		{PC: 0x403000, Target: 0x400000, Taken: true, Gap: 1}, // final taken: Flush filler preserves target
	}
	got := champSimRoundTrip(t, recs)
	want := champSimExpected(recs)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Spot-check the interesting recoveries directly.
	if got[1].Gap != 0 || !got[1].Taken {
		t.Errorf("record 1 shape changed: %+v", got[1])
	}
	if got[3].Target != 0x402000+4 {
		t.Errorf("never-taken PC target = %#x, want fall-through %#x", got[3].Target, 0x402000+4)
	}
	if got[5].Target != 0x400000 {
		t.Errorf("final taken target = %#x, want %#x preserved via Flush filler", got[5].Target, 0x400000)
	}
}

// TestChampSimNonCondBranchesAreGap pins classification: unconditional
// jumps (is_branch set, no flags read) count toward Gap, never emit
// Records.
func TestChampSimNonCondBranchesAreGap(t *testing.T) {
	var buf bytes.Buffer
	w := NewChampSimWriter(&buf)
	// Hand-assemble: filler, uncond jump, cond branch, filler.
	if err := w.writeInstr(0x1000, false, false); err != nil {
		t.Fatal(err)
	}
	// Unconditional jump: is_branch=1, writes IP, reads IP only.
	jmp := [champSimRecordSize]byte{}
	binary.LittleEndian.PutUint64(jmp[0:8], 0x1004)
	jmp[8] = 1 // is_branch
	jmp[9] = 1 // taken
	jmp[10] = champSimRegIP
	jmp[13] = champSimRegIP // src: IP, no FLAGS
	if _, err := w.w.Write(jmp[:]); err != nil {
		t.Fatal(err)
	}
	w.instrs++
	if err := w.writeInstr(0x2000, true, true); err != nil {
		t.Fatal(err)
	}
	if err := w.writeInstr(0x2100, false, false); err != nil {
		t.Fatal(err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewChampSimReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := Record{PC: 0x2000, Target: 0x2100, Taken: true, Gap: 2}
	if rec != want {
		t.Errorf("got %+v want %+v", rec, want)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Instructions() != 4 {
		t.Errorf("Instructions() = %d, want 4", r.Instructions())
	}
}

// TestChampSimFailClosed pins the malformed-input contract: truncated
// records and impossible flag bytes abort with an error — the reader never
// invents a Record from garbage.
func TestChampSimFailClosed(t *testing.T) {
	branch := func(ip uint64, taken bool) []byte {
		b := make([]byte, champSimRecordSize)
		binary.LittleEndian.PutUint64(b[0:8], ip)
		b[8] = 1
		if taken {
			b[9] = 1
		}
		b[10] = champSimRegIP
		b[12] = champSimRegFlags
		b[13] = champSimRegIP
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated mid-record", branch(0x1000, true)[:champSimRecordSize-1], "truncated record"},
		{"truncated second record", append(branch(0x1000, true), branch(0x2000, false)[:13]...), "truncated record"},
		{"is_branch out of range", func() []byte { b := branch(0x1000, false); b[8] = 7; return b }(), "is_branch byte 7"},
		{"taken out of range", func() []byte { b := branch(0x1000, false); b[9] = 200; return b }(), "taken byte 200"},
		{"taken on non-branch", func() []byte { b := branch(0x1000, true); b[8] = 0; return b }(), "taken set on a non-branch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewChampSimReader(bytes.NewReader(tc.data))
			for i := 0; i < 10; i++ {
				_, err := r.Next()
				if err == io.EOF {
					t.Fatalf("reader reached clean EOF on malformed input")
				}
				if err != nil {
					if !strings.Contains(err.Error(), tc.want) {
						t.Fatalf("error %q, want substring %q", err, tc.want)
					}
					return
				}
			}
			t.Fatal("reader never surfaced an error")
		})
	}
}

// FuzzChampSimRoundTrip drives arbitrary record tuples through the
// ChampSim codec and requires the reader to reproduce them under the
// documented target-recovery rule.
func FuzzChampSimRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x1040), true, uint32(3), uint64(0x2000), uint64(0x1000), false, uint32(0))
	f.Add(uint64(0), uint64(0), false, uint32(0), uint64(0), uint64(0), true, uint32(1))
	f.Add(^uint64(0), uint64(1), true, uint32(5), uint64(1<<63), ^uint64(0), true, uint32(0))
	f.Fuzz(func(t *testing.T, pc1, tgt1 uint64, tk1 bool, gap1 uint32, pc2, tgt2 uint64, tk2 bool, gap2 uint32) {
		// Cap gaps: each gap unit is a 64-byte filler record.
		recs := []Record{
			{PC: pc1, Target: tgt1, Taken: tk1, Gap: gap1 % 64},
			{PC: pc2, Target: tgt2, Taken: tk2, Gap: gap2 % 64},
			{PC: pc1, Target: tgt1, Taken: !tk1, Gap: gap1 % 7},
		}
		got := champSimRoundTrip(t, recs)
		want := champSimExpected(recs)
		if len(got) != len(want) {
			t.Fatalf("got %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzChampSimReaderRobustness feeds arbitrary bytes — truncated records,
// absurd lengths, non-monotonic PCs — to the ChampSim reader and requires
// it to terminate with a clean error or EOF, never panic or loop, and
// never emit a record after failing.
func FuzzChampSimReaderRobustness(f *testing.F) {
	instr := func(ip uint64, isBranch, taken byte, dst0, src0, src1 byte) []byte {
		b := make([]byte, champSimRecordSize)
		binary.LittleEndian.PutUint64(b[0:8], ip)
		b[8], b[9], b[10], b[12], b[13] = isBranch, taken, dst0, src0, src1
		return b
	}
	f.Add([]byte{})
	f.Add(instr(0x1000, 1, 1, champSimRegIP, champSimRegFlags, champSimRegIP)[:champSimRecordSize-1]) // truncated
	f.Add(bytes.Repeat([]byte{0xff}, 3*champSimRecordSize))                                           // absurd field values
	// Non-monotonic PCs: branches walking backwards through the image.
	nonMono := append(instr(0x9000, 1, 1, champSimRegIP, champSimRegFlags, champSimRegIP),
		instr(0x100, 1, 0, champSimRegIP, champSimRegFlags, champSimRegIP)...)
	nonMono = append(nonMono, instr(0x50, 0, 0, 0, 0, 0)...)
	f.Add(nonMono)
	f.Add(append(instr(0x1000, 0, 1, 0, 0, 0), 0x41)) // taken non-branch, then a stray byte
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewChampSimReader(bytes.NewReader(data))
		// An n-byte input holds at most n/64 instructions, so at most that
		// many records plus one pending flush; 2+len(data)/64 iterations
		// must reach EOF or an error.
		for i := 0; i <= 2+len(data)/champSimRecordSize; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				// Failure must be sticky: no record ever follows an error.
				if _, again := r.Next(); again == nil || again == io.EOF {
					t.Fatalf("reader yielded %v after error %v", again, err)
				}
				return
			}
		}
		t.Fatalf("reader did not terminate within the instruction budget (%d bytes)", len(data))
	})
}
