package trace

import (
	"fmt"
	"io"
)

// Segmenter cuts a branch stream into fixed-size replay-buffer segments for
// the streaming engine: long-horizon runs materialize one bounded segment
// at a time instead of the whole trace, so resident memory is a function of
// the segment size, never the horizon.
//
// Segments are self-contained: Materialize starts each buffer's PC-delta
// chain from zero, so a segment decodes to exactly the records the
// monolithic buffer would hold at the same offsets (pinned by
// TestSegmenterReassembles). Concatenating every segment's records
// reproduces the unsegmented stream bit for bit.
type Segmenter struct {
	src   Source
	size  int
	done  bool
	spare *ReplayBuffer
}

// NewSegmenter returns a segmenter yielding buffers of exactly size records
// (the final segment may be shorter). It panics on size < 1: the segment
// size is structural configuration validated at the flag layer, so a bad
// value here is a programming error.
func NewSegmenter(src Source, size int) *Segmenter {
	if size < 1 {
		panic(fmt.Sprintf("trace: segment size %d out of range [1,∞)", size))
	}
	return &Segmenter{src: src, size: size}
}

// Next materializes the next segment. It returns io.EOF once the source is
// exhausted; a short (or empty) materialization marks exhaustion, exactly
// like Materialize's own clean-EOF contract.
func (s *Segmenter) Next() (*ReplayBuffer, error) {
	if s.done {
		return nil, io.EOF
	}
	into := s.spare
	s.spare = nil
	if into == nil {
		into = &ReplayBuffer{}
	}
	buf, err := MaterializeInto(into, s.src, s.size)
	if err != nil {
		s.done = true
		return nil, err
	}
	if buf.Len() < s.size {
		s.done = true
	}
	if buf.Len() == 0 {
		return nil, io.EOF
	}
	return buf, nil
}

// Recycle hands a consumed segment buffer back for reuse by the next
// Next call. The caller asserts nothing still reads the buffer: its
// storage is overwritten in place. Recycling is optional — segments not
// handed back are simply garbage.
func (s *Segmenter) Recycle(b *ReplayBuffer) {
	if b != nil {
		s.spare = b
	}
}
