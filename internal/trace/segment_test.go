package trace

import (
	"fmt"
	"io"
	"testing"
)

// segTestSource deterministically generates n records with irregular PC
// deltas, targets and gaps, exercising the multi-byte varint paths.
type segTestSource struct {
	i, n int
	pc   uint64
}

func (s *segTestSource) Next() (Record, error) {
	if s.i >= s.n {
		return Record{}, io.EOF
	}
	i := uint64(s.i)
	s.pc += (i*2654435761)%8192 + 4
	r := Record{
		PC:     s.pc,
		Target: s.pc + (i%97)*16 - 400, // mixes forward and backward targets
		Gap:    uint32(i % 13),
		Taken:  i*i%3 == 0,
	}
	s.i++
	return r, nil
}

func collectAll(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		out = append(out, r)
	}
}

// TestSegmenterReassembles: for a spread of segment sizes — including 1, a
// prime, the stream length and one past it — the concatenation of every
// segment's records must equal the monolithic materialization record for
// record, and the segment lengths must be exact.
func TestSegmenterReassembles(t *testing.T) {
	const n = 5000
	mono, err := Materialize(&segTestSource{n: n}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := collectAll(t, mono.Source())
	if len(want) != n {
		t.Fatalf("monolithic buffer has %d records, want %d", len(want), n)
	}
	for _, size := range []int{1, 7, 997, n, n + 1} {
		seg := NewSegmenter(&segTestSource{n: n}, size)
		var got []Record
		segs := 0
		for {
			buf, err := seg.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if buf.Len() > size {
				t.Fatalf("size %d: segment %d holds %d records", size, segs, buf.Len())
			}
			if buf.Len() < size && (n%size != 0 || buf.Len() != size) {
				// only the final segment may be short; verified below by totals
			}
			got = append(got, collectAll(t, buf.Source())...)
			segs++
		}
		wantSegs := (n + size - 1) / size
		if segs != wantSegs {
			t.Errorf("size %d: %d segments, want %d", size, segs, wantSegs)
		}
		if len(got) != n {
			t.Fatalf("size %d: reassembled %d records, want %d", size, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d = %+v, want %+v", size, i, got[i], want[i])
			}
		}
		// Exhausted segmenters keep returning io.EOF.
		if _, err := seg.Next(); err != io.EOF {
			t.Errorf("size %d: post-exhaustion Next err = %v, want io.EOF", size, err)
		}
	}
}

// TestSegmenterEmptySource: an empty stream yields io.EOF immediately, never
// a zero-length segment.
func TestSegmenterEmptySource(t *testing.T) {
	seg := NewSegmenter(&segTestSource{n: 0}, 64)
	if _, err := seg.Next(); err != io.EOF {
		t.Fatalf("Next on empty source err = %v, want io.EOF", err)
	}
}

// TestSegmenterPropagatesError: a mid-stream source error surfaces and
// poisons the segmenter.
type errorAfterSource struct {
	inner Source
	left  int
}

func (s *errorAfterSource) Next() (Record, error) {
	if s.left == 0 {
		return Record{}, fmt.Errorf("synthetic source fault")
	}
	s.left--
	return s.inner.Next()
}

func TestSegmenterPropagatesError(t *testing.T) {
	seg := NewSegmenter(&errorAfterSource{inner: &segTestSource{n: 100}, left: 10}, 8)
	if buf, err := seg.Next(); err != nil || buf.Len() != 8 {
		t.Fatalf("first segment: len=%v err=%v", buf.Len(), err)
	}
	if _, err := seg.Next(); err == nil {
		t.Fatal("source fault did not surface")
	}
	if _, err := seg.Next(); err != io.EOF {
		t.Fatalf("post-error Next err = %v, want io.EOF", err)
	}
}

// TestSegmenterBadSize: a segment size below 1 is a programming error.
func TestSegmenterBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSegmenter(_, 0) did not panic")
		}
	}()
	NewSegmenter(&segTestSource{n: 1}, 0)
}
