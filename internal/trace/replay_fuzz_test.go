package trace

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReplayRoundTrip drives the replay buffer's zigzag-varint codec with
// fuzzer-chosen record streams: the fuzz input is consumed as a byte script
// deriving PCs (including full-range deltas), targets, gaps and outcomes.
// Every materialized stream must replay byte-identically, and the flat view
// must agree with the replay cursor record for record.
func FuzzReplayRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x01})
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i)*0x9E3779B97F4A7C15)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := traceFromScript(data)
		buf, err := Materialize(tr.Source(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if buf.Len() != len(tr) {
			t.Fatalf("Len = %d, want %d", buf.Len(), len(tr))
		}
		got, err := Collect(buf.Source(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("record %d: got %+v, want %+v", i, got[i], tr[i])
			}
		}
		flat := buf.Flatten()
		if flat.Len() != len(tr) {
			t.Fatalf("flat Len = %d, want %d", flat.Len(), len(tr))
		}
		for i := range tr {
			if flat.Record(i) != tr[i] {
				t.Fatalf("flat record %d: %+v, want %+v", i, flat.Record(i), tr[i])
			}
		}
	})
}

// traceFromScript turns fuzz bytes into a record stream, steering PCs
// through the delta encoder's whole range: small steps, sign flips, and
// jumps to arbitrary 64-bit addresses assembled from the input.
func traceFromScript(data []byte) Trace {
	tr := make(Trace, 0, len(data))
	var pc uint64
	for i := 0; i < len(data); i++ {
		b := data[i]
		switch b % 4 {
		case 0:
			pc += uint64(b) * 4
		case 1:
			pc -= uint64(b) * 8
		case 2:
			// Assemble a raw 64-bit address from the next bytes.
			var word [8]byte
			copy(word[:], data[i+1:min(i+9, len(data))])
			pc = binary.LittleEndian.Uint64(word[:])
		case 3:
			pc ^= math.MaxUint64 << (b % 64) // extreme delta, both signs
		}
		tr = append(tr, Record{
			PC:     pc,
			Target: pc + uint64(b)*2 - 255,
			Taken:  b&0x10 != 0,
			Gap:    uint32(b) << (b % 24),
		})
	}
	return tr
}

// TestReplayBufferEmptyTrace: a zero-record materialization replays as an
// immediate EOF and flattens to an empty view.
func TestReplayBufferEmptyTrace(t *testing.T) {
	buf, err := Materialize(Trace{}.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Len = %d, want 0", buf.Len())
	}
	got, err := Collect(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("replayed %d records from an empty buffer", len(got))
	}
	flat := buf.Flatten()
	if flat.Len() != 0 || flat.Footprint() != 0 {
		t.Fatalf("empty flat view: Len %d, Footprint %d", flat.Len(), flat.Footprint())
	}
}

// TestReplayBufferSingleBranch: the one-record stream round-trips, covering
// the first-record delta against the implicit zero previous PC.
func TestReplayBufferSingleBranch(t *testing.T) {
	tr := Trace{{PC: 0xFFFF_FFFF_FFFF_FFF0, Target: 0x10, Taken: true, Gap: 7}}
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != tr[0] {
		t.Fatalf("got %+v, want %+v", got, tr)
	}
	flat := buf.Flatten()
	if flat.Record(0) != tr[0] {
		t.Fatalf("flat: %+v, want %+v", flat.Record(0), tr[0])
	}
}

// TestReplayBufferMaximalDeltas: PC deltas at the extremes of the zigzag
// range — alternating between 0 and the largest addresses — must survive
// the 10-byte varint path exactly.
func TestReplayBufferMaximalDeltas(t *testing.T) {
	pcs := []uint64{
		0,
		math.MaxUint64, // delta +MaxUint64 (zigzag wraps the full range)
		0,              // delta -MaxUint64
		math.MaxInt64,  // largest positive signed delta
		1,              //
		1 << 63,        // most negative signed delta territory
		0xDEAD_BEEF_F00D_42}
	tr := make(Trace, len(pcs))
	for i, pc := range pcs {
		tr[i] = Record{PC: pc, Target: pc, Taken: i%2 == 0, Gap: math.MaxUint32}
	}
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], tr[i])
		}
	}
	flat := buf.Flatten()
	for i := range tr {
		if flat.Record(i) != tr[i] {
			t.Fatalf("flat record %d: %+v, want %+v", i, flat.Record(i), tr[i])
		}
	}
}

// TestFlatViewFullRecords: the flat view must hand out complete records —
// predictors read targets (BTFN, agree) and gating models read gaps — and
// report a footprint matching its per-record cost.
func TestFlatViewFullRecords(t *testing.T) {
	tr := randomishTrace(1000)
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	flat := buf.Flatten()
	for i := range tr {
		if flat.Record(i) != tr[i] {
			t.Fatalf("flat record %d: %+v, want %+v", i, flat.Record(i), tr[i])
		}
	}
	if want := uint64(len(tr)) * flatRecordBytes; flat.Footprint() != want {
		t.Fatalf("Footprint = %d, want %d", flat.Footprint(), want)
	}
}
