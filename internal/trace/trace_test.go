package trace

import (
	"errors"
	"io"
	"testing"
)

func sample(n int) Trace {
	t := make(Trace, n)
	for i := range t {
		pc := uint64(0x1000 + 4*(i%7))
		t[i] = Record{
			PC:     pc,
			Target: pc + uint64(8*(i%3)) - 4,
			Taken:  i%2 == 0,
			Gap:    uint32(i % 5),
		}
	}
	return t
}

func TestSliceSourceReplaysAll(t *testing.T) {
	tr := sample(10)
	src := tr.Source()
	for i, want := range tr {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
}

func TestCollect(t *testing.T) {
	tr := sample(20)
	got, err := Collect(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("collected %d records, want 20", len(got))
	}
	got, err = Collect(tr.Source(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("limited collect got %d, want 5", len(got))
	}
}

func TestTakeExact(t *testing.T) {
	tr := sample(10)
	got, err := Take(tr.Source(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d records", len(got))
	}
	if _, err := Take(tr.Source(), 11); !errors.Is(err, ErrShortTrace) {
		t.Fatalf("short take error = %v, want ErrShortTrace", err)
	}
}

func TestLimit(t *testing.T) {
	tr := sample(10)
	src := Limit(tr.Source(), 3)
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("limited source yielded %d records, want 3", n)
	}
}

func TestConcat(t *testing.T) {
	a, b := sample(3), sample(4)
	src := Concat(a.Source(), b.Source())
	got, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("concat yielded %d records, want 7", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i] != a[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	for i := 0; i < 4; i++ {
		if got[3+i] != b[i] {
			t.Fatalf("record %d mismatch", 3+i)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	if _, err := Concat().Next(); err != io.EOF {
		t.Fatalf("empty concat: %v", err)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := Trace{{PC: 1}, {PC: 2}, {PC: 3}, {PC: 4}}
	b := Trace{{PC: 101}, {PC: 102}, {PC: 103}, {PC: 104}}
	src := Interleave(2, a.Source(), b.Source())
	got, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 101, 102, 3, 4, 103, 104}
	if len(got) != len(want) {
		t.Fatalf("%d records", len(got))
	}
	for i, w := range want {
		if got[i].PC != w {
			t.Fatalf("record %d: PC %d want %d", i, got[i].PC, w)
		}
	}
}

func TestInterleaveUnevenSources(t *testing.T) {
	a := Trace{{PC: 1}}
	b := Trace{{PC: 101}, {PC: 102}, {PC: 103}}
	got, err := Collect(Interleave(2, a.Source(), b.Source()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d records, want 4", len(got))
	}
	// All records delivered, none duplicated.
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.PC] {
			t.Fatalf("duplicate PC %d", r.PC)
		}
		seen[r.PC] = true
	}
}

func TestInterleaveSingleSource(t *testing.T) {
	a := sample(5)
	got, err := Collect(Interleave(2, a.Source()), 0)
	if err != nil || len(got) != 5 {
		t.Fatalf("%d records, err %v", len(got), err)
	}
}

func TestInterleaveEmpty(t *testing.T) {
	if _, err := Interleave(1).Next(); err != io.EOF {
		t.Fatalf("empty interleave: %v", err)
	}
}

func TestInterleavePanicsOnZeroQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero quantum accepted")
		}
	}()
	Interleave(0, sample(1).Source())
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Record, error) {
		if n >= 2 {
			return Record{}, io.EOF
		}
		n++
		return Record{PC: uint64(n)}, nil
	})
	got, err := Collect(src, 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d records, err %v", len(got), err)
	}
}

func TestBackward(t *testing.T) {
	if !(Record{PC: 100, Target: 50}).Backward() {
		t.Fatal("target below PC not backward")
	}
	if (Record{PC: 100, Target: 150}).Backward() {
		t.Fatal("target above PC reported backward")
	}
}

func TestMeasure(t *testing.T) {
	tr := Trace{
		{PC: 0x100, Target: 0x80, Taken: true, Gap: 3}, // backward, taken
		{PC: 0x104, Target: 0x200, Taken: false, Gap: 1},
		{PC: 0x100, Target: 0x80, Taken: true, Gap: 0},
	}
	st, err := Measure(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 3 || st.Taken != 2 || st.Backward != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.StaticPCs != 2 {
		t.Fatalf("StaticPCs = %d, want 2", st.StaticPCs)
	}
	if st.Instructions != 3+3+1+0 {
		t.Fatalf("Instructions = %d, want 7", st.Instructions)
	}
	if got := st.TakenRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("TakenRate = %v", got)
	}
}

func TestMeasureEmpty(t *testing.T) {
	st, err := Measure(Trace{}.Source())
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 0 || st.TakenRate() != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}
