package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ChampSim-compatible trace codec.
//
// A ChampSim trace is a headerless stream of fixed 64-byte instruction
// records (the ecosystem's input_instr layout, little-endian):
//
//	ip          u64      instruction pointer
//	is_branch   u8       1 if the instruction is any branch
//	taken       u8       1 if the branch was taken
//	dest_regs   [2]u8    architectural destination registers
//	src_regs    [4]u8    architectural source registers
//	dest_mem    [2]u64   memory write addresses
//	src_mem     [4]u64   memory read addresses
//
// Conditional branches are identified the way the ChampSim frontend does:
// is_branch set, the instruction pointer among the destinations, and the
// flags register among the sources. Everything else — plain instructions,
// unconditional jumps, calls, returns — contributes to the Gap between
// conditional branches.
//
// The format does not carry branch targets. A taken branch's target is the
// ip of the instruction that follows it in the stream; for a not-taken
// branch the reader reuses the last taken target observed at the same PC,
// falling back to the fall-through ip (PC+4) for branches never yet seen
// taken. Both rules are deterministic, so reruns of the same bytes produce
// the same Record stream.

const (
	// champSimRecordSize is the fixed on-disk record size.
	champSimRecordSize = 64

	// Architectural register numbers ChampSim's classification keys on.
	champSimRegFlags = 25
	champSimRegIP    = 26
)

// champSimInstr is one decoded on-disk record (memory operands are not
// needed for branch studies and stay unparsed).
type champSimInstr struct {
	ip       uint64
	isBranch byte
	taken    byte
	destRegs [2]byte
	srcRegs  [4]byte
}

func (in champSimInstr) writesIP() bool {
	return in.destRegs[0] == champSimRegIP || in.destRegs[1] == champSimRegIP
}

func (in champSimInstr) readsFlags() bool {
	for _, r := range in.srcRegs {
		if r == champSimRegFlags {
			return true
		}
	}
	return false
}

// conditional reports whether the instruction is a conditional branch.
func (in champSimInstr) conditional() bool {
	return in.isBranch == 1 && in.writesIP() && in.readsFlags()
}

// ChampSimReader decodes conditional-branch Records from a ChampSim
// instruction trace. It implements Source.
//
// The reader fails closed: any malformed record — a truncated tail, flag
// bytes outside {0,1}, a taken mark on a non-branch — aborts the stream
// with an error rather than yielding a partial or guessed Record, so a
// corrupt trace can never leak a half-decoded view into annotation.
type ChampSimReader struct {
	r          *bufio.Reader
	buf        [champSimRecordSize]byte
	instrs     uint64 // instructions consumed
	count      uint64 // conditional branches emitted
	gap        uint64 // non-conditional instructions since the last branch
	pending    bool   // a branch is awaiting target resolution
	pendingRec Record
	lastTarget map[uint64]uint64 // PC -> last observed taken target
	err        error             // sticky decode failure
}

// NewChampSimReader returns a reader over a raw (uncompressed) ChampSim
// instruction stream. The format has no magic header, so validation is
// per-record.
func NewChampSimReader(r io.Reader) *ChampSimReader {
	return &ChampSimReader{
		r:          bufio.NewReaderSize(r, 1<<16),
		lastTarget: make(map[uint64]uint64),
	}
}

// readInstr decodes the next 64-byte record, validating the fields the
// branch pipeline depends on. io.EOF is clean only on a record boundary.
func (r *ChampSimReader) readInstr() (champSimInstr, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return champSimInstr{}, io.EOF
		}
		return champSimInstr{}, fmt.Errorf("trace: champsim instr %d: truncated record: %w", r.instrs, err)
	}
	in := champSimInstr{
		ip:       binary.LittleEndian.Uint64(r.buf[0:8]),
		isBranch: r.buf[8],
		taken:    r.buf[9],
	}
	copy(in.destRegs[:], r.buf[10:12])
	copy(in.srcRegs[:], r.buf[12:16])
	if in.isBranch > 1 {
		return champSimInstr{}, fmt.Errorf("trace: champsim instr %d: is_branch byte %d, want 0 or 1", r.instrs, in.isBranch)
	}
	if in.taken > 1 {
		return champSimInstr{}, fmt.Errorf("trace: champsim instr %d: taken byte %d, want 0 or 1", r.instrs, in.taken)
	}
	if in.taken == 1 && in.isBranch == 0 {
		return champSimInstr{}, fmt.Errorf("trace: champsim instr %d: taken set on a non-branch", r.instrs)
	}
	r.instrs++
	return in, nil
}

// resolve fills the pending branch's target from the successor ip (nextIP
// valid when haveNext), or from per-PC taken-target memory with a
// fall-through fallback.
func (r *ChampSimReader) resolve(nextIP uint64, haveNext bool) Record {
	rec := r.pendingRec
	r.pending = false
	switch {
	case rec.Taken && haveNext:
		rec.Target = nextIP
		r.lastTarget[rec.PC] = nextIP
	default:
		if t, ok := r.lastTarget[rec.PC]; ok {
			rec.Target = t
		} else {
			rec.Target = rec.PC + 4
		}
	}
	r.count++
	return rec
}

// stash parks a conditional branch until the next instruction reveals its
// taken target, banking the accumulated gap.
func (r *ChampSimReader) stash(in champSimInstr) error {
	if r.gap > math.MaxUint32 {
		return fmt.Errorf("trace: champsim instr %d: gap %d overflows uint32", r.instrs-1, r.gap)
	}
	r.pendingRec = Record{PC: in.ip, Taken: in.taken == 1, Gap: uint32(r.gap)}
	r.pending = true
	r.gap = 0
	return nil
}

// Next decodes the next conditional branch, returning io.EOF cleanly at
// end of stream. Decode failures are sticky: once the stream is found
// malformed, every subsequent call returns the same error — a pending
// branch is never flushed past a failure.
func (r *ChampSimReader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for {
		in, err := r.readInstr()
		if err == io.EOF {
			if r.pending {
				// The trace ended on a branch; no successor ip exists, so
				// the deterministic memory/fall-through rule applies even
				// if it was taken.
				return r.resolve(0, false), nil
			}
			return Record{}, io.EOF
		}
		if err != nil {
			r.err = err
			return Record{}, err
		}
		if r.pending {
			rec := r.resolve(in.ip, true)
			// Account for the instruction that resolved the target before
			// handing the record out, so no state is owed across calls.
			if in.conditional() {
				if err := r.stash(in); err != nil {
					r.err = err
					return Record{}, err
				}
			} else {
				r.gap++
			}
			return rec, nil
		}
		if in.conditional() {
			if err := r.stash(in); err != nil {
				r.err = err
				return Record{}, err
			}
			continue
		}
		r.gap++
	}
}

// Count returns the number of conditional branches decoded so far.
func (r *ChampSimReader) Count() uint64 { return r.count }

// Instructions returns the number of instructions consumed so far.
func (r *ChampSimReader) Instructions() uint64 { return r.instrs }

// ChampSimWriter encodes a Record stream as a ChampSim instruction trace,
// for tracegen and self-contained CI. Each Record becomes Gap non-branch
// filler instructions followed by one conditional-branch instruction; the
// filler after a taken branch carries the branch's target as its ip, which
// is exactly where ChampSimReader recovers it from.
//
// The format constrains what round-trips: a taken branch's target is
// preserved only if an instruction follows it (Flush appends a final
// filler to guarantee that for the last record), and a not-taken branch's
// target only if that PC was taken earlier with the same target — the same
// information loss real ChampSim traces have.
type ChampSimWriter struct {
	w             *bufio.Writer
	buf           [champSimRecordSize]byte
	count         uint64 // records (conditional branches) written
	instrs        uint64 // instructions written
	pendingTaken  bool   // last instruction was a taken branch
	pendingTarget uint64
	fillPC        uint64 // ip for the next filler when no target is owed
}

// NewChampSimWriter returns a ready writer; the format has no header.
func NewChampSimWriter(w io.Writer) *ChampSimWriter {
	return &ChampSimWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// writeInstr emits one 64-byte record. Conditional branches carry the
// register sets ChampSim's own tracer gives them (writes IP, reads
// IP+FLAGS), so any ecosystem consumer classifies them the same way.
func (w *ChampSimWriter) writeInstr(ip uint64, cond, taken bool) error {
	for i := range w.buf {
		w.buf[i] = 0
	}
	binary.LittleEndian.PutUint64(w.buf[0:8], ip)
	if cond {
		w.buf[8] = 1
		if taken {
			w.buf[9] = 1
		}
		w.buf[10] = champSimRegIP    // dest_regs[0]
		w.buf[12] = champSimRegFlags // src_regs[0]
		w.buf[13] = champSimRegIP    // src_regs[1]
	}
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("trace: champsim instr %d: %w", w.instrs, err)
	}
	w.instrs++
	return nil
}

// Write appends one record (its gap fillers, then the branch itself).
func (w *ChampSimWriter) Write(r Record) error {
	for i := uint32(0); i < r.Gap; i++ {
		ip := w.fillPC
		if w.pendingTaken {
			ip = w.pendingTarget
			w.pendingTaken = false
		}
		if err := w.writeInstr(ip, false, false); err != nil {
			return err
		}
		w.fillPC = ip + 4
	}
	if err := w.writeInstr(r.PC, true, r.Taken); err != nil {
		return err
	}
	w.pendingTaken = r.Taken
	w.pendingTarget = r.Target
	w.fillPC = r.PC + 4
	w.count++
	return nil
}

// Count returns the number of records (conditional branches) written.
func (w *ChampSimWriter) Count() uint64 { return w.count }

// Flush terminates the stream: if the last instruction was a taken branch
// it appends one filler at the branch's target so the target survives the
// round trip, then drains buffered output. Call once, at end of stream.
func (w *ChampSimWriter) Flush() error {
	if w.pendingTaken {
		w.pendingTaken = false
		if err := w.writeInstr(w.pendingTarget, false, false); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// WriteAll streams every record from src, returning the record count.
func (w *ChampSimWriter) WriteAll(src Source) (uint64, error) {
	start := w.count
	for {
		r, err := src.Next()
		if err == io.EOF {
			return w.count - start, w.Flush()
		}
		if err != nil {
			return w.count - start, err
		}
		if err := w.Write(r); err != nil {
			return w.count - start, err
		}
	}
}
