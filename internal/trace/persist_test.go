package trace

import (
	"bytes"
	"testing"
)

func TestReplayPersistRoundTrip(t *testing.T) {
	tr := randomishTrace(5000)
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := buf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReplayBuffer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != buf.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), buf.Len())
	}
	replayed, err := Collect(got.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if replayed[i] != tr[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, replayed[i], tr[i])
		}
	}
	// The encoding is canonical: re-marshalling the decoded buffer must
	// reproduce the payload byte for byte (content-addressed stores and the
	// warm-start byte-diff both lean on this).
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, payload) {
		t.Fatal("re-marshalled payload differs")
	}
}

func TestReplayPersistEmpty(t *testing.T) {
	buf, err := Materialize(Trace(nil).Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := buf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReplayBuffer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Len = %d, want 0", got.Len())
	}
}

// TestReplayPersistRejectsDamage: the type-level decoder guards structure
// (the replay fast path decodes without bounds checks), so truncations and
// length-field lies must all fail — never decode to a buffer that could
// read out of bounds.
func TestReplayPersistRejectsDamage(t *testing.T) {
	tr := randomishTrace(200)
	buf, err := Materialize(tr.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := buf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(payload); n++ {
		if _, err := UnmarshalReplayBuffer(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Claim one more record than the stream holds.
	mut := bytes.Clone(payload)
	mut[0]++
	if _, err := UnmarshalReplayBuffer(mut); err == nil {
		t.Fatal("inflated record count accepted")
	}
	// Claim a longer data section than present.
	mut = bytes.Clone(payload)
	mut[8]++
	if _, err := UnmarshalReplayBuffer(mut); err == nil {
		t.Fatal("inflated data length accepted")
	}
	// Trailing garbage after the outcome words.
	if _, err := UnmarshalReplayBuffer(append(bytes.Clone(payload), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
