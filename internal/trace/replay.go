package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"branchconf/internal/bitvec"
)

// ReplayBuffer is a compact, immutable, in-memory materialization of a
// branch trace, built for the materialize-once / replay-many pattern of the
// single-pass simulation engine: generating a synthetic workload walks a
// program model and burns RNG draws per branch, while replaying a
// materialized trace is a tight varint decode.
//
// The encoding mirrors the on-disk BCT1 codec: per record a zigzag-varint
// PC delta from the previous PC, a zigzag-varint PC-relative target, and a
// varint gap, which keeps typical records to 3-5 bytes. Outcomes live in a
// separate bit vector (one bit per branch), so a one-million-branch
// benchmark trace costs roughly 4-5 MB instead of the 24 MB of []Record.
//
// A fully built buffer is read-only; any number of Sources may replay it
// concurrently, each holding its own cursor.
type ReplayBuffer struct {
	data  []byte        // varint-encoded (pcDelta, targetDelta, gap) stream
	taken bitvec.Vector // outcome bit per record
	n     int
}

// Materialize drains src into a replay buffer. A limit of 0 means
// unbounded; otherwise at most limit records are read. Like Collect, a
// clean io.EOF ends materialization without error.
func Materialize(src Source, limit int) (*ReplayBuffer, error) {
	return MaterializeInto(&ReplayBuffer{}, src, limit)
}

// MaterializeInto is Materialize reusing b's storage: the buffer is reset
// to empty first and its byte and outcome-bit capacity carried over. The
// streaming engine recycles consumed segment buffers through here
// (Segmenter.Recycle), so a long walk allocates a couple of buffers total
// instead of one per segment. b must not be shared: reuse restarts the
// read-only contract a fully built buffer otherwise has.
func MaterializeInto(b *ReplayBuffer, src Source, limit int) (*ReplayBuffer, error) {
	b.data = b.data[:0]
	b.taken.Reset()
	b.n = 0
	if limit > 0 && cap(b.data) == 0 {
		// Reserve for typical 3-5 byte records up front: a bounded
		// materialization otherwise pays a doubling chain of dead arrays
		// roughly the size of the final buffer.
		b.data = make([]byte, 0, limit*4)
	}
	var prevPC uint64
	var buf [3 * binary.MaxVarintLen64]byte
	for limit == 0 || b.n < limit {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: materializing record %d: %w", b.n, err)
		}
		n := binary.PutUvarint(buf[:], zigzag(int64(r.PC-prevPC)))
		n += binary.PutUvarint(buf[n:], zigzag(int64(r.Target-r.PC)))
		n += binary.PutUvarint(buf[n:], uint64(r.Gap))
		b.data = append(b.data, buf[:n]...)
		b.taken.Append(r.Taken)
		prevPC = r.PC
		b.n++
	}
	return b, nil
}

// Len returns the number of materialized records.
func (b *ReplayBuffer) Len() int { return b.n }

// Footprint returns the buffer's payload size in bytes: the encoded record
// stream plus the packed outcome bits.
func (b *ReplayBuffer) Footprint() uint64 {
	return uint64(len(b.data)) + b.taken.Bytes()
}

// Source returns a Source replaying the buffer from the beginning. Each
// call returns an independent cursor; concurrent replays are safe.
func (b *ReplayBuffer) Source() Source { return &replaySource{buf: b} }

type replaySource struct {
	buf     *ReplayBuffer
	off     int // byte offset into buf.data
	pos     int // record index
	prevPC  uint64
	takenWd uint64 // cached outcome word covering records [pos&^63, pos|63]
}

// Next decodes one record. The one- and two-byte varint paths — which
// dominate delta streams — are decoded inline; longer encodings take the
// uvarintSlow fallback. Outcome bits are fetched one 64-bit word at a time.
func (s *replaySource) Next() (Record, error) {
	if s.pos >= s.buf.n {
		return Record{}, io.EOF
	}
	data, off := s.buf.data, s.off
	var head, tgt, gap uint64
	if b0 := data[off]; b0 < 0x80 {
		head, off = uint64(b0), off+1
	} else if b1 := data[off+1]; b1 < 0x80 {
		head, off = uint64(b0&0x7f)|uint64(b1)<<7, off+2
	} else {
		head, off = uvarintSlow(data, off)
	}
	if b0 := data[off]; b0 < 0x80 {
		tgt, off = uint64(b0), off+1
	} else if b1 := data[off+1]; b1 < 0x80 {
		tgt, off = uint64(b0&0x7f)|uint64(b1)<<7, off+2
	} else {
		tgt, off = uvarintSlow(data, off)
	}
	if b0 := data[off]; b0 < 0x80 {
		gap, off = uint64(b0), off+1
	} else if b1 := data[off+1]; b1 < 0x80 {
		gap, off = uint64(b0&0x7f)|uint64(b1)<<7, off+2
	} else {
		gap, off = uvarintSlow(data, off)
	}
	s.off = off
	if s.pos&63 == 0 {
		s.takenWd = s.buf.taken.Word(s.pos >> 6)
	}
	var r Record
	r.PC = s.prevPC + uint64(unzigzag(head))
	r.Target = r.PC + uint64(unzigzag(tgt))
	r.Gap = uint32(gap)
	r.Taken = s.takenWd>>uint(s.pos&63)&1 == 1
	s.prevPC = r.PC
	s.pos++
	return r, nil
}

// uvarintSlow decodes varint encodings of three or more bytes.
func uvarintSlow(data []byte, off int) (uint64, int) {
	v, n := binary.Uvarint(data[off:])
	return v, off + n
}
