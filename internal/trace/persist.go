package trace

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/bitvec"
)

// Persistence codec for replay buffers, the payload behind
// artifact.KindReplayBuffer. The layout is the in-memory representation,
// length-prefixed:
//
//	u64  record count n
//	u64  encoded record-stream length D
//	D    varint (pcDelta, targetDelta, gap) stream, as held in memory
//	u64  outcome word count W (== ceil(n/64))
//	8*W  packed outcome bits, little-endian words
//
// Integrity against random corruption is the artifact record checksum's
// job; UnmarshalReplayBuffer still validates structure exhaustively —
// including a full bounds-checked walk of the varint stream — so a decoded
// buffer can never panic a replay cursor or change results: a payload
// either revives the exact buffer that was stored or fails to decode. A
// failed decode is treated like a disk fault everywhere this codec is
// consulted (workload.Materialize): drop the record, rebuild, never fail
// the run — the contract the fault matrix in cmd/paperrepro asserts.

// MarshalBinary encodes the buffer for the artifact store.
func (b *ReplayBuffer) MarshalBinary() ([]byte, error) {
	words := b.taken.Words()
	out := make([]byte, 0, 8+8+len(b.data)+8+8*len(words))
	out = binary.LittleEndian.AppendUint64(out, uint64(b.n))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(b.data)))
	out = append(out, b.data...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalReplayBuffer decodes a MarshalBinary payload, validating shape
// and walking the record stream once so later replays cannot read out of
// bounds.
func UnmarshalReplayBuffer(payload []byte) (*ReplayBuffer, error) {
	rd := payload
	if len(rd) < 16 {
		return nil, fmt.Errorf("trace: replay payload truncated at header")
	}
	n := binary.LittleEndian.Uint64(rd)
	dataLen := binary.LittleEndian.Uint64(rd[8:])
	rd = rd[16:]
	const maxInt = uint64(int(^uint(0) >> 1))
	if n > maxInt || dataLen > uint64(len(rd)) {
		return nil, fmt.Errorf("trace: replay payload lengths (n %d, data %d) exceed payload size %d", n, dataLen, len(payload))
	}
	data := rd[:dataLen:dataLen]
	rd = rd[dataLen:]
	if len(rd) < 8 {
		return nil, fmt.Errorf("trace: replay payload truncated before outcome words")
	}
	wordCount := binary.LittleEndian.Uint64(rd)
	rd = rd[8:]
	if wordCount != (n+63)/64 || uint64(len(rd)) != 8*wordCount {
		return nil, fmt.Errorf("trace: replay payload outcome words (%d) disagree with record count %d", wordCount, n)
	}
	words := make([]uint64, wordCount)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(rd[8*i:])
	}
	taken, err := bitvec.MakeVector(words, int(n))
	if err != nil {
		return nil, fmt.Errorf("trace: replay payload: %w", err)
	}
	if err := validateRecordStream(data, int(n)); err != nil {
		return nil, err
	}
	return &ReplayBuffer{data: data, taken: taken, n: int(n)}, nil
}

// validateRecordStream checks that data holds exactly n well-formed
// (pcDelta, targetDelta, gap) varint triples and nothing else. The replay
// fast path (replaySource.Next) decodes without bounds checks for speed, so
// decoded payloads must be proven in-bounds here, once, instead of on every
// replay.
func validateRecordStream(data []byte, n int) error {
	off := 0
	for i := 0; i < n; i++ {
		for f := 0; f < 3; f++ {
			v, w := binary.Uvarint(data[off:])
			if w <= 0 {
				return fmt.Errorf("trace: replay payload record %d field %d is a malformed varint", i, f)
			}
			if f == 2 && v > 1<<32-1 {
				return fmt.Errorf("trace: replay payload record %d gap %d overflows uint32", i, v)
			}
			off += w
		}
	}
	if off != len(data) {
		return fmt.Errorf("trace: replay payload has %d trailing bytes after %d records", len(data)-off, n)
	}
	return nil
}
