package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format ("BCT1"):
//
//	magic   [4]byte  "BCT1"
//	records until EOF, each:
//	  head   uvarint  zigzag(PC - prevPC)
//	  tgt    uvarint  zigzag(Target - PC)
//	  meta   uvarint  Gap << 1 | taken
//
// PC deltas and PC-relative targets keep typical records to 3-5 bytes.
// The stream carries no record count; readers consume until EOF, which
// lets writers stream arbitrarily long traces without buffering.

var magic = [4]byte{'B', 'C', 'T', '1'}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes records to an underlying stream. Close (or Flush) must be
// called to drain buffered output.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	buf    [3 * binary.MaxVarintLen64]byte
	count  uint64
}

// NewWriter writes the format header and returns a ready Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record to the stream.
func (w *Writer) Write(r Record) error {
	meta := uint64(r.Gap) << 1
	if r.Taken {
		meta |= 1
	}
	n := binary.PutUvarint(w.buf[:], zigzag(int64(r.PC-w.prevPC)))
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(r.Target-r.PC)))
	n += binary.PutUvarint(w.buf[n:], meta)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.prevPC = r.PC
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll streams every record from src, returning the record count.
func (w *Writer) WriteAll(src Source) (uint64, error) {
	start := w.count
	for {
		r, err := src.Next()
		if err == io.EOF {
			return w.count - start, w.Flush()
		}
		if err != nil {
			return w.count - start, err
		}
		if err := w.Write(r); err != nil {
			return w.count - start, err
		}
	}
}

// Reader decodes records from a stream written by Writer. It implements
// Source.
type Reader struct {
	r      *bufio.Reader
	prevPC uint64
	count  uint64
}

// NewReader validates the format header and returns a ready Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", got, magic)
	}
	return &Reader{r: br}, nil
}

// Next decodes the next record, returning io.EOF cleanly at end of stream.
func (r *Reader) Next() (Record, error) {
	head, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d head: %w", r.count, err)
	}
	tgt, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d target: %w", r.count, eofIsUnexpected(err))
	}
	meta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d meta: %w", r.count, eofIsUnexpected(err))
	}
	if gap := meta >> 1; gap > 1<<32-1 {
		return Record{}, fmt.Errorf("trace: record %d gap %d overflows uint32", r.count, gap)
	}
	var rec Record
	rec.Taken = meta&1 == 1
	rec.PC = r.prevPC + uint64(unzigzag(head))
	rec.Target = rec.PC + uint64(unzigzag(tgt))
	rec.Gap = uint32(meta >> 1)
	r.prevPC = rec.PC
	r.count++
	return rec, nil
}

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
