// Package trace defines the branch-trace substrate of the simulator: the
// record type describing one dynamic conditional branch, streaming sources,
// in-memory traces, and a compact binary codec for persisting traces to
// disk.
//
// The paper's experiments are trace-driven: every confidence mechanism
// consumes a stream of (PC, outcome) pairs produced by running benchmarks.
// This package is the equivalent of the authors' trace tooling; traces here
// are either generated on the fly by internal/workload or replayed from
// files written by cmd/tracegen.
package trace

import (
	"errors"
	"io"
)

// Record describes one dynamic conditional branch.
type Record struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the branch-taken destination address. Backward targets
	// (Target < PC) identify loop branches for BTFN-style predictors.
	Target uint64
	// Taken reports the resolved branch direction.
	Taken bool
	// Gap is the number of non-branch instructions fetched since the
	// previous conditional branch; fetch-bandwidth models (SMT gating)
	// use it to convert branch counts into instruction counts.
	Gap uint32
}

// Backward reports whether the branch jumps to a lower address when taken,
// the usual signature of a loop-closing branch.
func (r Record) Backward() bool { return r.Target < r.PC }

// Source is a stream of branch records. Next returns io.EOF after the last
// record; any other error indicates a malformed or unreadable trace.
type Source interface {
	Next() (Record, error)
}

// Trace is an in-memory sequence of records.
type Trace []Record

// Source returns a Source replaying the trace from the beginning.
func (t Trace) Source() Source { return &sliceSource{records: t} }

type sliceSource struct {
	records []Record
	pos     int
}

func (s *sliceSource) Next() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// Collect drains src into an in-memory trace. A limit of 0 means unbounded;
// otherwise at most limit records are read.
func Collect(src Source, limit int) (Trace, error) {
	var t Trace
	for limit == 0 || len(t) < limit {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return t, err
		}
		t = append(t, r)
	}
	return t, nil
}

// ErrShortTrace is returned by Take when the source ends before n records.
var ErrShortTrace = errors.New("trace: source ended early")

// Take reads exactly n records from src, failing with ErrShortTrace if the
// source ends first.
func Take(src Source, n int) (Trace, error) {
	t := make(Trace, 0, n)
	for len(t) < n {
		r, err := src.Next()
		if err == io.EOF {
			return t, ErrShortTrace
		}
		if err != nil {
			return t, err
		}
		t = append(t, r)
	}
	return t, nil
}

// Limit wraps src so that at most n records are delivered.
func Limit(src Source, n uint64) Source { return &limitSource{src: src, remaining: n} }

type limitSource struct {
	src       Source
	remaining uint64
}

func (l *limitSource) Next() (Record, error) {
	if l.remaining == 0 {
		return Record{}, io.EOF
	}
	r, err := l.src.Next()
	if err == nil {
		l.remaining--
	}
	return r, err
}

// Concat chains sources end to end.
func Concat(srcs ...Source) Source { return &concatSource{srcs: srcs} }

type concatSource struct {
	srcs []Source
}

func (c *concatSource) Next() (Record, error) {
	for len(c.srcs) > 0 {
		r, err := c.srcs[0].Next()
		if err == io.EOF {
			c.srcs = c.srcs[1:]
			continue
		}
		return r, err
	}
	return Record{}, io.EOF
}

// Interleave multiplexes sources round-robin in runs of quantum records,
// modelling a multiprogrammed machine that context-switches between
// workloads. Exhausted sources drop out; the stream ends when all are
// done. It panics if quantum is zero: the schedule is fixed configuration.
func Interleave(quantum uint64, srcs ...Source) Source {
	if quantum == 0 {
		panic("trace: Interleave quantum must be positive")
	}
	return &interleaveSource{srcs: srcs, quantum: quantum, remaining: quantum}
}

type interleaveSource struct {
	srcs      []Source
	quantum   uint64
	cur       int
	remaining uint64
}

func (s *interleaveSource) Next() (Record, error) {
	for len(s.srcs) > 0 {
		if s.remaining == 0 {
			s.cur = (s.cur + 1) % len(s.srcs)
			s.remaining = s.quantum
		}
		r, err := s.srcs[s.cur].Next()
		if err == io.EOF {
			s.srcs = append(s.srcs[:s.cur], s.srcs[s.cur+1:]...)
			if len(s.srcs) > 0 {
				s.cur %= len(s.srcs)
			}
			s.remaining = s.quantum
			continue
		}
		if err != nil {
			return Record{}, err
		}
		s.remaining--
		return r, nil
	}
	return Record{}, io.EOF
}

// FuncSource adapts a generator function to the Source interface.
type FuncSource func() (Record, error)

// Next calls the wrapped function.
func (f FuncSource) Next() (Record, error) { return f() }

// Stats summarises a trace in one pass.
type Stats struct {
	Branches     uint64 // dynamic conditional branches
	Taken        uint64 // how many resolved taken
	Backward     uint64 // dynamic branches with backward targets
	Instructions uint64 // branches plus gap instructions
	StaticPCs    int    // distinct branch addresses
}

// TakenRate returns the fraction of branches resolved taken.
func (s Stats) TakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// Measure drains src and returns its summary statistics.
func Measure(src Source) (Stats, error) {
	var st Stats
	pcs := make(map[uint64]struct{})
	for {
		r, err := src.Next()
		if err == io.EOF {
			st.StaticPCs = len(pcs)
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Branches++
		st.Instructions += uint64(r.Gap) + 1
		if r.Taken {
			st.Taken++
		}
		if r.Backward() {
			st.Backward++
		}
		pcs[r.PC] = struct{}{}
	}
}
