// Package branchconf is a from-scratch Go reproduction of "Assigning
// Confidence to Conditional Branch Predictions" (Jacobsen, Rotenberg &
// Smith, MICRO-29, 1996): hardware mechanisms that split conditional
// branch predictions into high- and low-confidence sets so that most
// mispredictions concentrate in a small low-confidence set.
//
// The root package carries the module documentation and the benchmark
// harness (bench_test.go) that regenerates every table and figure of the
// paper's evaluation. The implementation lives under internal/:
//
//   - internal/core — the confidence mechanisms (one-level and two-level
//     CIR tables, counter tables, reduction functions): the paper's
//     contribution.
//   - internal/predictor — the underlying branch predictors (gshare et
//     al.).
//   - internal/workload — the synthetic benchmark suite standing in for
//     the IBS traces, calibrated to the paper's misprediction anchors.
//   - internal/trace, internal/bitvec, internal/xrand — substrates.
//   - internal/analysis, internal/sim, internal/exp — statistics, drivers
//     and the per-figure experiment registry.
//   - internal/apps — the four §1 applications (dual-path execution, SMT
//     fetch gating, hybrid selection, prediction reversal).
//
// Entry points: cmd/confsim (run one experiment), cmd/paperrepro
// (regenerate everything), cmd/tracegen (write traces), and the runnable
// examples under examples/.
package branchconf
